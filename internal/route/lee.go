package route

import (
	"container/heap"

	"netart/internal/geom"
)

// This file implements the Lee maze runner of §5.2.2 as a baseline: a
// cell-by-cell wave expansion that guarantees a connection whenever one
// exists. The classic algorithm minimizes wire length; a set of penalty
// functions "may control the router to generate the minimum resistance
// path, such as a path with a minimum number of bends" (§5.2.2), which
// the Objective knob reproduces. The bends-first mode doubles as the
// independent reference implementation the line-expansion router is
// property-tested against.

// Objective selects the cost order of a search.
type Objective int

// The two cost orders.
const (
	// BendsFirst ranks (bends, crossings, length): the paper's
	// schematic objective (§5.4).
	BendsFirst Objective = iota
	// LengthFirst ranks (length, bends, crossings): the traditional
	// layout objective of the Lee router.
	LengthFirst
	// LengthCrossBends ranks (length, crossings, bends): the -s swap
	// applied to the traditional order, kept for the ablation bench.
	LengthCrossBends
)

// leeCost is a lexicographic cost triple.
type leeCost struct {
	bends, cross, length int
}

func (c leeCost) less(o leeCost, obj Objective) bool {
	var a, b [3]int
	switch obj {
	case LengthFirst:
		a = [3]int{c.length, c.bends, c.cross}
		b = [3]int{o.length, o.bends, o.cross}
	case LengthCrossBends:
		a = [3]int{c.length, c.cross, c.bends}
		b = [3]int{o.length, o.cross, o.bends}
	default:
		a = [3]int{c.bends, c.cross, c.length}
		b = [3]int{o.bends, o.cross, o.length}
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// leeState is a search node: a plane point entered while moving in a
// given direction.
type leeState struct {
	p geom.Point
	d geom.Dir
}

type leeItem struct {
	st   leeState
	cost leeCost
	idx  int
}

type leeQueue struct {
	items []*leeItem
	obj   Objective
}

func (q *leeQueue) Len() int { return len(q.items) }
func (q *leeQueue) Less(i, j int) bool {
	return q.items[i].cost.less(q.items[j].cost, q.obj)
}
func (q *leeQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].idx, q.items[j].idx = i, j
}
func (q *leeQueue) Push(x any) {
	it := x.(*leeItem)
	it.idx = len(q.items)
	q.items = append(q.items, it)
}
func (q *leeQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}

// leeSearch runs a Dijkstra-style wave expansion (the Lee algorithm
// generalized with penalty costs) from a terminal point toward a target
// predicate. It obeys exactly the same legality rules as the
// line-expansion engine: wires may cross perpendicular foreign wires
// (cost), may never overlap parallel ones, stop at modules, bends,
// claims and the plane border, and cannot turn on a crossing cell.
//
// The expansion is confined to the inclusive window win (targets on the
// first ring outside still connect, like the line engine) and, once a
// goal is known, A*-pruned: every target point lies inside tbox, so
// manhattanToBox(p, tbox) is an admissible lower bound on the remaining
// wire length from p. A state whose cost plus that bound cannot rank
// strictly better than the goal can never improve it — cost components
// only grow along a path and the lexicographic orders are translation
// invariant — so it is dropped, at the pop and at the push.
func leeSearch(pl *Plane, net int32, from geom.Point, dirs []geom.Dir,
	target func(geom.Point) bool, obj Objective, win, tbox geom.Rect,
	cancel *cancelCheck) ([]Segment, bool) {

	type visitKey struct {
		idx int
		d   geom.Dir
	}
	dist := map[visitKey]leeCost{}
	prev := map[leeState]leeState{}
	q := &leeQueue{obj: obj}
	heap.Init(q)

	crossingCell := func(p geom.Point, d geom.Dir) bool {
		var w int32
		if d == geom.Up || d == geom.Down {
			w = pl.HNet(p)
		} else {
			w = pl.VNet(p)
		}
		return w != 0 && w != net
	}
	stops := func(p geom.Point, d geom.Dir) bool {
		if pl.Blocked(p) || pl.Bend(p) {
			return true
		}
		if cl := pl.Claimpoint(p); cl != 0 && cl != net {
			return true
		}
		var along int32
		if d == geom.Up || d == geom.Down {
			along = pl.VNet(p)
		} else {
			along = pl.HNet(p)
		}
		return along != 0 // own-net along-wires are targets, handled earlier
	}

	var goal *leeState
	var goalCost leeCost
	haveGoal := false

	// beatable reports whether a state at p with the given cost could
	// still rank strictly better than the known goal (A* admissibility
	// prune; always true before a goal exists).
	beatable := func(p geom.Point, cost leeCost) bool {
		if !haveGoal {
			return true
		}
		cost.length += manhattanToBox(p, tbox)
		return cost.less(goalCost, obj)
	}

	push := func(st leeState, cost leeCost, from leeState, hasFrom bool) {
		if !beatable(st.p, cost) {
			return
		}
		key := visitKey{pl.idx(st.p), st.d}
		if old, ok := dist[key]; ok && !cost.less(old, obj) {
			return
		}
		dist[key] = cost
		if hasFrom {
			prev[st] = from
		}
		heap.Push(q, &leeItem{st: st, cost: cost})
	}

	// Seed: step out of the terminal in each allowed direction.
	for _, d := range dirs {
		np := from.Add(d.Delta())
		if target(np) {
			return []Segment{{from, np}}, true
		}
		if !winContains(win, np) || !pl.InBounds(np) || stops(np, d) {
			continue
		}
		cross := 0
		if crossingCell(np, d) {
			cross = 1
		}
		push(leeState{np, d}, leeCost{0, cross, 1}, leeState{from, d}, true)
	}

	for q.Len() > 0 {
		if cancel.tick() {
			return nil, false // abandoned wavefront: caller checks ctx.Err()
		}
		it := heap.Pop(q).(*leeItem)
		st, cost := it.st, it.cost
		key := visitKey{pl.idx(st.p), st.d}
		if best, ok := dist[key]; ok && best.less(cost, obj) {
			continue // stale entry
		}
		if !beatable(st.p, cost) {
			continue
		}
		onCrossing := crossingCell(st.p, st.d)
		for _, nd := range geom.Dirs {
			if nd == st.d.Opposite() {
				continue
			}
			turning := nd != st.d
			if turning && onCrossing {
				continue // crossings cannot be turning points
			}
			if turning && nd.Horizontal() == st.d.Horizontal() {
				continue // only perpendicular turns exist on a grid
			}
			np := st.p.Add(nd.Delta())
			ncost := cost
			ncost.length++
			if turning {
				ncost.bends++
			}
			if target(np) {
				if !haveGoal || ncost.less(goalCost, obj) {
					g := leeState{np, nd}
					prev[g] = st
					goal = &g
					goalCost = ncost
					haveGoal = true
				}
				continue
			}
			if !winContains(win, np) || !pl.InBounds(np) || stops(np, nd) {
				continue
			}
			if crossingCell(np, nd) {
				ncost.cross++
			}
			push(leeState{np, nd}, ncost, st, true)
		}
	}
	if !haveGoal {
		return nil, false
	}
	// Trace back: walk prev pointers, emitting a point chain, then
	// compress into segments.
	var pts []geom.Point
	cur := *goal
	for {
		pts = append(pts, cur.p)
		p, ok := prev[cur]
		if !ok {
			break
		}
		if p.p == from && p.d == cur.d || p.p == from {
			pts = append(pts, from)
			break
		}
		cur = p
	}
	return pointsToSegments(pts), true
}

// pointsToSegments compresses a chain of adjacent points into maximal
// axis-aligned segments.
func pointsToSegments(pts []geom.Point) []Segment {
	if len(pts) < 2 {
		return nil
	}
	var segs []Segment
	start := pts[0]
	for i := 1; i < len(pts); i++ {
		if i == len(pts)-1 {
			segs = append(segs, Segment{start, pts[i]})
			break
		}
		d0 := pts[i].Sub(pts[i-1])
		d1 := pts[i+1].Sub(pts[i])
		if d0 != d1 {
			segs = append(segs, Segment{start, pts[i]})
			start = pts[i]
		}
	}
	return cleanSegments(segs)
}
