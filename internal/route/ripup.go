package route

import (
	"sort"

	"netart/internal/geom"
	"netart/internal/netlist"
)

// This file implements a rip-up-and-reroute pass, an extension beyond
// the 1989 paper in the spirit of its §7 outlook ("it is probably
// better to construct a certain criterion for selecting the next net to
// be routed"): when a net stays unroutable after the claimpoint retry
// pass, the router removes one nearby routed net at a time, tries the
// failed connection again, and re-routes the removed net; the exchange
// is kept only when both nets end up complete.

// ripUpPass attempts to fix every remaining failure. maxCandidates
// bounds how many blocking nets are tried per failed net. The pass
// polls the router's cancellation between nets: rip-up multiplies the
// per-net work (every exchange reroutes several nets), so a cancelled
// context must not sit through the whole pass.
func (rt *router) ripUpPass(maxCandidates int) {
	for _, rn := range rt.result.Nets {
		if rt.cancel.poll() {
			return
		}
		if rn.OK() {
			continue
		}
		rt.stats.RipUps++
		rt.ripUpOne(rn, maxCandidates, 2)
	}
}

// ripUpOne tries to complete one failed net by displacing its
// neighbours: candidates are removed cumulatively (nearest first)
// until the failed net completes, then every removed net is rerouted
// from scratch. The whole exchange rolls back unless everything ends
// up complete.
func (rt *router) ripUpOne(rn *RoutedNet, maxCandidates, depth int) {
	if depth <= 0 {
		return
	}
	victims := rt.ripCandidates(rn, maxCandidates)
	if len(victims) == 0 {
		return
	}
	// Snapshot everything any exchange attempt may touch.
	savedSelf := append([]Segment(nil), rn.Segments...)
	savedFailed := append([]*netlist.Terminal(nil), rn.Failed...)
	type victimState struct {
		segs   []Segment
		failed []*netlist.Terminal
	}
	savedVictims := map[*netlist.Net]victimState{}
	for _, v := range victims {
		vrn := rt.result.byNet[v]
		savedVictims[v] = victimState{
			segs:   append([]Segment(nil), vrn.Segments...),
			failed: append([]*netlist.Terminal(nil), vrn.Failed...),
		}
	}
	rollback := func() {
		rn.Segments = append([]Segment(nil), savedSelf...)
		rn.Failed = append([]*netlist.Terminal(nil), savedFailed...)
		for v, st := range savedVictims {
			rt.result.byNet[v].Segments = append([]Segment(nil), st.segs...)
			rt.result.byNet[v].Failed = append([]*netlist.Terminal(nil), st.failed...)
		}
		rt.rebuildPlane()
	}

	// Try each rotation of the candidate order: a displaced net that
	// cannot be rerouted in one order often can in another, because the
	// failed net then claims a different corridor.
	for start := 0; start < len(victims); start++ {
		if rt.cancel.poll() {
			rollback()
			return
		}
		order := append(append([]*netlist.Net(nil), victims[start:]...), victims[:start]...)
		var removed []*netlist.Net
		for _, v := range order {
			rt.result.byNet[v].Segments = nil
			removed = append(removed, v)
			rt.rebuildPlane()
			rt.completePending(rn)
			if rn.OK() {
				break
			}
		}
		if ripDebug {
			println("ripup:", rn.Net.Name, "start", start, "removed", len(removed), "ok", rn.OK())
		}
		ok := rn.OK()
		if ok {
			// Reroute the displaced nets on the updated plane; a victim
			// that cannot be rerouted may displace further (bounded
			// recursion).
			for _, v := range removed {
				fresh := rt.routeNet(v)
				*rt.result.byNet[v] = *fresh
				if !fresh.OK() {
					rt.ripUpOne(rt.result.byNet[v], maxCandidates, depth-1)
				}
				if !rt.result.byNet[v].OK() {
					if ripDebug {
						println("ripup: reroute of victim failed:", v.Name)
					}
					ok = false
					break
				}
			}
		}
		if ok {
			return // exchange kept
		}
		rollback()
	}
}

// ripDebug enables tracing prints for the rip-up pass in tests.
var ripDebug = false

// ripCandidates returns nearby routed nets ordered by distance from the
// failed terminals' neighbourhood.
func (rt *router) ripCandidates(rn *RoutedNet, max int) []*netlist.Net {
	if len(rn.Failed) == 0 {
		return nil
	}
	// The neighbourhood: bounding box over the failed terminals and the
	// net's existing geometry, inflated a little.
	var lo, hi geom.Point
	first := true
	grow := func(p geom.Point) {
		if first {
			lo, hi, first = p, p, false
			return
		}
		lo = geom.Pt(geom.Min(lo.X, p.X), geom.Min(lo.Y, p.Y))
		hi = geom.Pt(geom.Max(hi.X, p.X), geom.Max(hi.Y, p.Y))
	}
	for _, t := range rn.Failed {
		grow(rt.termPoint(t))
	}
	for _, s := range rn.Segments {
		grow(s.A)
		grow(s.B)
	}
	for _, t := range rn.Net.Terms {
		grow(rt.termPoint(t))
	}
	lo = lo.Sub(geom.Pt(2, 2))
	hi = hi.Add(geom.Pt(2, 2))

	type cand struct {
		n *netlist.Net
		d int
	}
	center := geom.Pt((lo.X+hi.X)/2, (lo.Y+hi.Y)/2)
	var cands []cand
	for _, other := range rt.result.Nets {
		if other.Net == rn.Net || !other.OK() || len(other.Segments) == 0 {
			continue
		}
		if _, pre := rt.opts.Prerouted[other.Net]; pre {
			continue // hand-drawn nets are never displaced
		}
		inBox := false
		best := 1 << 30
		for _, s := range other.Segments {
			c := s.Canon()
			// Clamp the box onto the segment's span: the segment
			// intersects the box iff its line crosses both ranges.
			if c.A.X <= hi.X && c.B.X >= lo.X && c.A.Y <= hi.Y && c.B.Y >= lo.Y {
				inBox = true
			}
			if d := distToSegment(center, s); d < best {
				best = d
			}
		}
		if inBox {
			cands = append(cands, cand{other.Net, best})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	if len(cands) > max {
		cands = cands[:max]
	}
	out := make([]*netlist.Net, len(cands))
	for i, c := range cands {
		out[i] = c.n
	}
	return out
}

// rebuildPlane reconstructs the obstacle configuration from scratch
// using every net's current geometry (claims are gone by the time
// rip-up runs).
func (rt *router) rebuildPlane() {
	// buildPlane only fails on inconsistent placements, which were
	// validated on the first construction.
	_ = rt.buildPlane()
	rt.result.Plane = rt.plane
	for _, rn := range rt.result.Nets {
		if len(rn.Segments) == 0 {
			continue
		}
		// Existing geometries were legal when laid; they stay legal on
		// an empty plane.
		_ = rt.plane.LayWire(rt.netID[rn.Net], rn.Segments)
	}
}
