package boxes

import (
	"testing"
	"testing/quick"

	"netart/internal/geom"
	"netart/internal/netlist"
	"netart/internal/partition"
	"netart/internal/workload"
)

func partsOf(d *netlist.Design, maxPart int) []*partition.Part {
	return partition.Partition(d, partition.Config{MaxSize: maxPart})
}

// checkBoxesPartition verifies that the boxes of each partition cover
// its modules exactly once and obey the size bound.
func checkBoxesPartition(t *testing.T, parts []*partition.Part, bxs [][]*Box, maxBox int) {
	t.Helper()
	for pi, p := range parts {
		seen := map[*netlist.Module]bool{}
		for _, b := range bxs[pi] {
			if b.Len() == 0 {
				t.Fatalf("partition %d has an empty box", pi)
			}
			if b.Len() > maxBox {
				t.Errorf("partition %d box length %d > %d", pi, b.Len(), maxBox)
			}
			for _, m := range b.Modules {
				if seen[m] {
					t.Errorf("module %s in two boxes", m.Name)
				}
				seen[m] = true
				if !p.Contains(m) {
					t.Errorf("module %s boxed outside its partition", m.Name)
				}
			}
		}
		if len(seen) != len(p.Modules) {
			t.Errorf("partition %d: boxed %d of %d modules", pi, len(seen), len(p.Modules))
		}
	}
}

// checkStringsConnected verifies the string invariant: consecutive box
// modules are out→in connected.
func checkStringsConnected(t *testing.T, bxs [][]*Box) {
	t.Helper()
	for _, pb := range bxs {
		for _, b := range pb {
			for i := 0; i+1 < b.Len(); i++ {
				if _, _, ok := StringNet(b.Modules[i], b.Modules[i+1]); !ok {
					t.Errorf("box string broken between %s and %s",
						b.Modules[i].Name, b.Modules[i+1].Name)
				}
			}
		}
	}
}

func TestFig61SingleBox(t *testing.T) {
	// Figure 6.1: one partition (p=6), one box (b=6) holding the whole
	// string in signal order.
	d := workload.Fig61()
	parts := partsOf(d, 6)
	if len(parts) != 1 {
		t.Fatalf("%d partitions, want 1", len(parts))
	}
	bxs := Form(d, parts, Config{MaxBoxSize: 6})
	if len(bxs[0]) != 1 {
		t.Fatalf("%d boxes, want 1", len(bxs[0]))
	}
	b := bxs[0][0]
	if b.Len() != 6 {
		t.Fatalf("box length %d, want 6", b.Len())
	}
	for i, m := range b.Modules {
		want := "m" + string(rune('0'+i))
		if m.Name != want {
			t.Errorf("level %d: %s, want %s", i+1, m.Name, want)
		}
	}
	checkStringsConnected(t, bxs)
}

func TestBoxSizeOne(t *testing.T) {
	// -b 1, the Appendix E default: one module per box.
	d := workload.Datapath16()
	parts := partsOf(d, 5)
	bxs := Form(d, parts, Config{MaxBoxSize: 1})
	checkBoxesPartition(t, parts, bxs, 1)
}

func TestBoxSizeBound(t *testing.T) {
	d := workload.Datapath16()
	parts := partsOf(d, 7)
	for _, maxBox := range []int{1, 2, 3, 5} {
		bxs := Form(d, parts, Config{MaxBoxSize: maxBox})
		checkBoxesPartition(t, parts, bxs, maxBox)
		checkStringsConnected(t, bxs)
	}
}

func TestBoxesFormLongStrings(t *testing.T) {
	// In a -p 7 -b 5 run (figure 6.4) the datapath lanes must surface
	// as strings longer than one module.
	d := workload.Datapath16()
	parts := partsOf(d, 7)
	bxs := Form(d, parts, Config{MaxBoxSize: 5})
	longest := 0
	for _, pb := range bxs {
		for _, b := range pb {
			if b.Len() > longest {
				longest = b.Len()
			}
		}
	}
	if longest < 3 {
		t.Errorf("longest string %d, want >= 3 (mux->reg->alu chains exist)", longest)
	}
}

func TestConstructRoots(t *testing.T) {
	d := workload.Fig61()
	parts := partsOf(d, 6)
	roots := ConstructRoots(d, parts[0])
	// m0 is connected to a system in-terminal: must be a root.
	if !roots[d.Module("m0")] {
		t.Error("m0 (system input) not a root")
	}
	// m5 has exactly one net to other modules: must be a root.
	if !roots[d.Module("m5")] {
		t.Error("m5 (single net) not a root")
	}
	// m2 sits mid-string with two nets and no external/system link.
	if roots[d.Module("m2")] {
		t.Error("m2 should not be a root")
	}
}

func TestRootsAcrossPartitions(t *testing.T) {
	// With small partitions, a module connected to another partition
	// must be a root.
	d := workload.Fig61()
	parts := partsOf(d, 2)
	if len(parts) < 2 {
		t.Skip("partitioning merged everything")
	}
	for _, p := range parts {
		roots := ConstructRoots(d, p)
		if len(roots) == 0 {
			t.Errorf("partition with no roots despite external connections")
		}
	}
}

func TestCyclicPartitionStillBoxed(t *testing.T) {
	// A ring of modules has no natural roots (every module has two
	// nets); box formation must still terminate and cover everything.
	d := netlist.NewDesign("ring")
	const n = 4
	for i := 0; i < n; i++ {
		_, err := d.AddModule(name(i), "G", 3, 3, []netlist.TermSpec{
			{Name: "A", Type: netlist.In, Pos: pt(0, 1)},
			{Name: "Y", Type: netlist.Out, Pos: pt(3, 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		net := "r" + name(i)
		if err := d.Connect(net, name(i), "Y"); err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(net, name((i+1)%n), "A"); err != nil {
			t.Fatal(err)
		}
	}
	parts := partsOf(d, n)
	bxs := Form(d, parts, Config{MaxBoxSize: n})
	checkBoxesPartition(t, parts, bxs, n)
	checkStringsConnected(t, bxs)
	// The ring should be peeled as one string of n modules (the cycle
	// broken once).
	if len(bxs[0]) != 1 || bxs[0][0].Len() != n {
		t.Errorf("ring boxed as %d boxes, first of length %d", len(bxs[0]), bxs[0][0].Len())
	}
}

func TestLongestPathPrefersLongest(t *testing.T) {
	// Y-shaped network: a -> b -> c and a -> d. The first box from root
	// a must take the 3-long branch.
	d := netlist.NewDesign("y")
	mk := func(nm string) {
		_, err := d.AddModule(nm, "G", 3, 3, []netlist.TermSpec{
			{Name: "A", Type: netlist.In, Pos: pt(0, 1)},
			{Name: "Y", Type: netlist.Out, Pos: pt(3, 1)},
			{Name: "Y2", Type: netlist.Out, Pos: pt(3, 2)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, nm := range []string{"a", "b", "c", "dd"} {
		mk(nm)
	}
	conn := func(net, m1, t1, m2, t2 string) {
		if err := d.Connect(net, m1, t1); err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(net, m2, t2); err != nil {
			t.Fatal(err)
		}
	}
	conn("n1", "a", "Y", "b", "A")
	conn("n2", "b", "Y", "c", "A")
	conn("n3", "a", "Y2", "dd", "A")
	// Make a a root (system input rule) so the longest-path search
	// starts there; it must then prefer the 3-long branch over a->dd.
	if _, err := d.AddSysTerm("GO", netlist.In); err != nil {
		t.Fatal(err)
	}
	if err := d.ConnectSys("ngo", "GO"); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("ngo", "a", "A"); err != nil {
		t.Fatal(err)
	}
	parts := partsOf(d, 4)
	bxs := Form(d, parts, Config{MaxBoxSize: 4})
	first := bxs[0][0]
	if first.Len() != 3 {
		t.Fatalf("first box length %d, want 3 (a,b,c)", first.Len())
	}
	names := []string{first.Modules[0].Name, first.Modules[1].Name, first.Modules[2].Name}
	if names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Errorf("first box = %v, want [a b c]", names)
	}
}

func TestBoxHelpers(t *testing.T) {
	d := workload.Fig61()
	parts := partsOf(d, 6)
	bxs := Form(d, parts, Config{MaxBoxSize: 6})
	b := bxs[0][0]
	if b.Head().Name != "m0" || b.Tail().Name != "m5" {
		t.Errorf("Head/Tail = %s/%s", b.Head().Name, b.Tail().Name)
	}
}

func TestStringNetNotConnected(t *testing.T) {
	d := workload.Fig61()
	if _, _, ok := StringNet(d.Module("m0"), d.Module("m3")); ok {
		t.Error("StringNet found a link between unconnected modules")
	}
	// Direction matters: m1 drives m2, not the reverse.
	if _, _, ok := StringNet(d.Module("m2"), d.Module("m1")); ok {
		t.Error("StringNet ignored direction")
	}
}

func TestBoxesPropertyRandom(t *testing.T) {
	f := func(seed int64, partRaw, boxRaw uint8) bool {
		d := workload.Random(10, seed)
		maxPart := 1 + int(partRaw)%6
		maxBox := 1 + int(boxRaw)%5
		parts := partition.Partition(d, partition.Config{MaxSize: maxPart})
		bxs := Form(d, parts, Config{MaxBoxSize: maxBox})
		for pi, p := range parts {
			seen := map[*netlist.Module]bool{}
			for _, b := range bxs[pi] {
				if b.Len() == 0 || b.Len() > maxBox {
					return false
				}
				for i, m := range b.Modules {
					if seen[m] || !p.Contains(m) {
						return false
					}
					seen[m] = true
					if i > 0 {
						if _, _, ok := StringNet(b.Modules[i-1], m); !ok {
							return false
						}
					}
				}
			}
			if len(seen) != len(p.Modules) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func name(i int) string { return string(rune('p' + i)) }

func pt(x, y int) geom.Point { return geom.Pt(x, y) }
