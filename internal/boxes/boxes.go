// Package boxes implements the box formation step of Koster & Stok
// (§4.6.3, BOX_FORMATION): inside each partition, continuous strings of
// out→in connected modules are peeled off along longest paths rooted at
// designated root modules. The position of a module in its string is its
// level, which enforces left-to-right signal flow during module
// placement.
package boxes

import (
	"sync"
	"sync/atomic"

	"netart/internal/netlist"
	"netart/internal/partition"
)

// Box is one string of connected modules. Modules[0] is the root (level
// 1 in the paper's terms); Modules[i] is out→in connected to
// Modules[i+1].
type Box struct {
	Modules []*netlist.Module
}

// Len returns the string length.
func (b *Box) Len() int { return len(b.Modules) }

// Head returns the first (leftmost) module.
func (b *Box) Head() *netlist.Module { return b.Modules[0] }

// Tail returns the last (rightmost) module.
func (b *Box) Tail() *netlist.Module { return b.Modules[len(b.Modules)-1] }

// Config bounds the string search.
type Config struct {
	// MaxBoxSize is the maximum string length (-b). Values < 1 are
	// treated as 1, the Appendix E default, which keeps every module in
	// its own box (figures 6.2 and 6.3).
	MaxBoxSize int
	// Workers is the number of goroutines Form may use to process
	// independent partitions concurrently (0/1 = sequential). The
	// per-partition computation reads only the design and the
	// partition's own module set, and results land in a slice indexed
	// by partition, so the output is byte-identical for every worker
	// count: the knob is an execution hint, never a result parameter.
	Workers int
}

func (c Config) maxBox() int {
	if c.MaxBoxSize < 1 {
		return 1
	}
	return c.MaxBoxSize
}

// Form divides every partition into boxes. The returned outer slice is
// parallel to parts. With cfg.Workers > 1 the partitions are processed
// concurrently; because each partition's string search is a pure
// function of (design, partition, cfg) and the result slot is indexed
// by partition, the output is identical to the sequential form.
func Form(d *netlist.Design, parts []*partition.Part, cfg Config) [][]*Box {
	out := make([][]*Box, len(parts))
	workers := cfg.Workers
	if workers > len(parts) {
		workers = len(parts)
	}
	if workers <= 1 {
		for i, p := range parts {
			out[i] = formPartition(d, p, cfg)
		}
		return out
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(parts) {
					return
				}
				out[i] = formPartition(d, parts[i], cfg)
			}
		}()
	}
	wg.Wait()
	return out
}

// formPartition implements the inner loop of BOX_FORMATION for one
// partition: compute the root set, then repeatedly extract the longest
// path over the remaining modules, rooted at a remaining root.
func formPartition(d *netlist.Design, p *partition.Part, cfg Config) []*Box {
	remaining := map[*netlist.Module]bool{}
	order := append([]*netlist.Module(nil), p.Modules...)
	for _, m := range order {
		remaining[m] = true
	}
	roots := ConstructRoots(d, p)

	var out []*Box
	for len(remaining) > 0 {
		// Live roots: still unassigned. If none remain (all roots were
		// consumed mid-path or the partition has no roots at all), every
		// remaining module becomes a candidate root; the paper's loop
		// assumes roots never run dry, which does not hold for cyclic or
		// root-free partitions.
		var live []*netlist.Module
		for _, m := range order {
			if remaining[m] && roots[m] {
				live = append(live, m)
			}
		}
		if len(live) == 0 {
			for _, m := range order {
				if remaining[m] {
					live = append(live, m)
				}
			}
		}
		var maxPath []*netlist.Module
		for _, r := range live {
			path := longestPath(d, []*netlist.Module{r}, remaining, cfg.maxBox())
			if len(path) > len(maxPath) {
				maxPath = path
			}
		}
		for _, m := range maxPath {
			delete(remaining, m)
		}
		delete(roots, maxPath[0])
		out = append(out, &Box{Modules: maxPath})
	}
	return out
}

// ConstructRoots implements CONSTRUCT_ROOTS: a module may root a string
// if (a) it is connected to a module outside the partition, or (b) it is
// connected by a net to a system terminal of type in or inout, or (c) it
// has exactly one distinct net to other modules.
func ConstructRoots(d *netlist.Design, p *partition.Part) map[*netlist.Module]bool {
	inPart := p.Set()
	roots := map[*netlist.Module]bool{}
	for _, m := range p.Modules {
		if connectsOutsidePartition(m, inPart) ||
			connectsInSystemTerminal(m) ||
			moduleNetDegree(m) == 1 {
			roots[m] = true
		}
	}
	return roots
}

func connectsOutsidePartition(m *netlist.Module, inPart map[*netlist.Module]bool) bool {
	for _, t := range m.Terms {
		if t.Net == nil {
			continue
		}
		for _, u := range t.Net.Terms {
			if u.Module != nil && u.Module != m && !inPart[u.Module] {
				return true
			}
		}
	}
	return false
}

func connectsInSystemTerminal(m *netlist.Module) bool {
	for _, t := range m.Terms {
		if t.Net == nil {
			continue
		}
		for _, u := range t.Net.Terms {
			if u.Module == nil && (u.Type == netlist.In || u.Type == netlist.InOut) {
				return true
			}
		}
	}
	return false
}

// moduleNetDegree counts the distinct nets connecting m to other
// modules.
func moduleNetDegree(m *netlist.Module) int {
	seen := map[*netlist.Net]bool{}
	count := 0
	for _, t := range m.Terms {
		n := t.Net
		if n == nil || seen[n] {
			continue
		}
		seen[n] = true
		for _, u := range n.Terms {
			if u.Module != nil && u.Module != m {
				count++
				break
			}
		}
	}
	return count
}

// longestPath implements LONGEST_PATH: depth-first extension of path by
// modules from the remaining set that are out→in connected to the
// current path tail, bounded by maxBox.
func longestPath(d *netlist.Design, path []*netlist.Module,
	remaining map[*netlist.Module]bool, maxBox int) []*netlist.Module {
	maxPath := append([]*netlist.Module(nil), path...)
	if len(path) >= maxBox {
		return maxPath
	}
	// Iterate candidates deterministically via the tail's nets rather
	// than map order.
	tail := path[len(path)-1]
	for _, cand := range outInSuccessors(tail) {
		if !remaining[cand] || contains(path, cand) {
			continue
		}
		delete(remaining, cand)
		p := longestPath(d, append(path, cand), remaining, maxBox)
		remaining[cand] = true
		if len(p) > len(maxPath) {
			maxPath = p
		}
	}
	return maxPath
}

func contains(path []*netlist.Module, m *netlist.Module) bool {
	for _, x := range path {
		if x == m {
			return true
		}
	}
	return false
}

// outInSuccessors returns, in deterministic order, the modules reachable
// from m over a net that leaves m through an out/inout terminal and
// enters the successor through an in/inout terminal — the string
// connectivity condition of LONGEST_PATH.
func outInSuccessors(m *netlist.Module) []*netlist.Module {
	var out []*netlist.Module
	seen := map[*netlist.Module]bool{}
	for _, t := range m.Terms {
		if t.Net == nil || !t.Type.CanDrive() {
			continue
		}
		for _, u := range t.Net.Terms {
			if u.Module == nil || u.Module == m || seen[u.Module] {
				continue
			}
			if u.Type.CanSink() {
				seen[u.Module] = true
				out = append(out, u.Module)
			}
		}
	}
	return out
}

// StringNet returns the net and terminal pair that links two successive
// string modules: an out/inout terminal of prev and an in/inout terminal
// of next on a common net. Module placement aligns these terminals. The
// boolean result is false when the modules are not out→in connected
// (which cannot happen for boxes produced by Form).
func StringNet(prev, next *netlist.Module) (tPrev, tNext *netlist.Terminal, ok bool) {
	for _, t := range prev.Terms {
		if t.Net == nil || !t.Type.CanDrive() {
			continue
		}
		for _, u := range t.Net.Terms {
			if u.Module == next && u.Type.CanSink() {
				return t, u, true
			}
		}
	}
	return nil, nil, false
}
