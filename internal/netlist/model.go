// Package netlist defines the network model consumed by the schematic
// diagram generator: modules (subsystems) carrying subsystem terminals,
// nets interconnecting terminals, and system terminals on the border of
// the diagram. It corresponds to the design nine-tuple of §4.6.2 of
// Koster & Stok (EUT 89-E-219):
//
//	(M, N, ST, T, terms, type, position-terminal, net, size)
//
// plus readers and writers for the net-list description of Appendix A.
package netlist

import (
	"fmt"
	"sort"

	"netart/internal/geom"
)

// TermType is the electrical direction of a terminal: in, out or inout.
type TermType int

// The three terminal types of the paper.
const (
	In TermType = iota
	Out
	InOut
)

// String implements fmt.Stringer with the Appendix A keywords.
func (t TermType) String() string {
	switch t {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	default:
		return fmt.Sprintf("TermType(%d)", int(t))
	}
}

// ParseTermType parses the Appendix A keywords "in", "out" and "inout".
func ParseTermType(s string) (TermType, error) {
	switch s {
	case "in":
		return In, nil
	case "out":
		return Out, nil
	case "inout":
		return InOut, nil
	default:
		return 0, fmt.Errorf("netlist: unknown terminal type %q", s)
	}
}

// CanDrive reports whether a terminal of type t may act as a signal
// source (out or inout).
func (t TermType) CanDrive() bool { return t == Out || t == InOut }

// CanSink reports whether a terminal of type t may act as a signal
// consumer (in or inout).
func (t TermType) CanSink() bool { return t == In || t == InOut }

// Terminal is a connection point. A subsystem terminal belongs to a
// module and Pos is relative to the module's lower-left corner in the
// library orientation; a system terminal has Module == nil and its Pos
// is assigned by terminal placement.
type Terminal struct {
	Name   string
	Type   TermType
	Pos    geom.Point
	Module *Module // nil for system terminals
	Net    *Net    // nil while unconnected
}

// IsSystem reports whether t is a system terminal.
func (t *Terminal) IsSystem() bool { return t.Module == nil }

// Side returns the module side the subsystem terminal sits on, following
// the side() function of §4.6.2: x=0 is left, x=w is right, y=h is up,
// y=0 is down (corners resolve in that order, matching the paper's
// guard ordering which tests left and right with inclusive y ranges).
func (t *Terminal) Side() (geom.Dir, error) {
	if t.Module == nil {
		return 0, fmt.Errorf("netlist: system terminal %q has no side", t.Name)
	}
	w, h := t.Module.W, t.Module.H
	switch {
	case t.Pos.X == 0 && t.Pos.Y >= 0 && t.Pos.Y <= h:
		return geom.Left, nil
	case t.Pos.X == w && t.Pos.Y >= 0 && t.Pos.Y <= h:
		return geom.Right, nil
	case t.Pos.Y == h && t.Pos.X > 0 && t.Pos.X < w:
		return geom.Up, nil
	case t.Pos.Y == 0 && t.Pos.X > 0 && t.Pos.X < w:
		return geom.Down, nil
	default:
		return 0, fmt.Errorf("netlist: terminal %q at %v not on boundary of %dx%d module %q",
			t.Name, t.Pos, w, h, t.Module.Name)
	}
}

// Label returns a human readable "module.terminal" or "root.terminal"
// identifier.
func (t *Terminal) Label() string {
	if t.Module == nil {
		return "root." + t.Name
	}
	return t.Module.Name + "." + t.Name
}

// Module is a subsystem instance: a rectangular symbol of size W x H
// carrying subsystem terminals on its boundary.
type Module struct {
	Name     string // instance name
	Template string // library template name (may be empty for ad-hoc modules)
	W, H     int
	Terms    []*Terminal
}

// Term returns the terminal with the given name, or nil.
func (m *Module) Term(name string) *Terminal {
	for _, t := range m.Terms {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Size returns the module dimensions as a point.
func (m *Module) Size() geom.Point { return geom.Pt(m.W, m.H) }

// Net is a set of terminals that must be interconnected by a single wire
// tree.
type Net struct {
	Name  string
	Terms []*Terminal
}

// Degree returns the number of terminals the net connects.
func (n *Net) Degree() int { return len(n.Terms) }

// Design is the complete network: the paper's nine-tuple. Lookup maps
// are maintained by the builder methods; Modules, Nets and SysTerms keep
// insertion order so generation is deterministic.
type Design struct {
	Name     string
	Modules  []*Module
	Nets     []*Net
	SysTerms []*Terminal

	modByName map[string]*Module
	netByName map[string]*Net
	sysByName map[string]*Terminal
}

// NewDesign returns an empty design with the given name.
func NewDesign(name string) *Design {
	return &Design{
		Name:      name,
		modByName: map[string]*Module{},
		netByName: map[string]*Net{},
		sysByName: map[string]*Terminal{},
	}
}

// Module returns the module with the given instance name, or nil.
func (d *Design) Module(name string) *Module { return d.modByName[name] }

// Net returns the net with the given name, or nil.
func (d *Design) Net(name string) *Net { return d.netByName[name] }

// SysTerm returns the system terminal with the given name, or nil.
func (d *Design) SysTerm(name string) *Terminal { return d.sysByName[name] }

// AddModule adds a module instance with explicit geometry. Terminal specs
// give name, type and boundary position. It fails on duplicate instance
// names, duplicate terminal names, or off-boundary terminals.
func (d *Design) AddModule(name, template string, w, h int, terms []TermSpec) (*Module, error) {
	if name == "" {
		return nil, fmt.Errorf("netlist: empty module name")
	}
	if _, dup := d.modByName[name]; dup {
		return nil, fmt.Errorf("netlist: duplicate module %q", name)
	}
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("netlist: module %q has non-positive size %dx%d", name, w, h)
	}
	m := &Module{Name: name, Template: template, W: w, H: h}
	seen := map[string]bool{}
	for _, ts := range terms {
		if seen[ts.Name] {
			return nil, fmt.Errorf("netlist: module %q has duplicate terminal %q", name, ts.Name)
		}
		seen[ts.Name] = true
		t := &Terminal{Name: ts.Name, Type: ts.Type, Pos: ts.Pos, Module: m}
		if _, err := t.Side(); err != nil {
			return nil, err
		}
		m.Terms = append(m.Terms, t)
	}
	d.Modules = append(d.Modules, m)
	d.modByName[name] = m
	return m, nil
}

// TermSpec describes one terminal when building a module.
type TermSpec struct {
	Name string
	Type TermType
	Pos  geom.Point
}

// AddSysTerm adds a system terminal of the given type. Its position is
// determined later by terminal placement.
func (d *Design) AddSysTerm(name string, typ TermType) (*Terminal, error) {
	if name == "" {
		return nil, fmt.Errorf("netlist: empty system terminal name")
	}
	if _, dup := d.sysByName[name]; dup {
		return nil, fmt.Errorf("netlist: duplicate system terminal %q", name)
	}
	t := &Terminal{Name: name, Type: typ}
	d.SysTerms = append(d.SysTerms, t)
	d.sysByName[name] = t
	return t, nil
}

// ensureNet returns the net with the given name, creating it if needed.
func (d *Design) ensureNet(name string) *Net {
	if n, ok := d.netByName[name]; ok {
		return n
	}
	n := &Net{Name: name}
	d.Nets = append(d.Nets, n)
	d.netByName[name] = n
	return n
}

// Connect attaches the named subsystem terminal to the named net,
// creating the net on first use (the Appendix A net-list record
// <NET> <INSTANCE> <TERMINAL>).
func (d *Design) Connect(netName, modName, termName string) error {
	m := d.modByName[modName]
	if m == nil {
		return fmt.Errorf("netlist: net %q references unknown module %q", netName, modName)
	}
	t := m.Term(termName)
	if t == nil {
		return fmt.Errorf("netlist: net %q references unknown terminal %q.%q", netName, modName, termName)
	}
	return d.attach(netName, t)
}

// ConnectSys attaches the named system terminal to the named net (the
// Appendix A record with instance "root").
func (d *Design) ConnectSys(netName, termName string) error {
	t := d.sysByName[termName]
	if t == nil {
		return fmt.Errorf("netlist: net %q references unknown system terminal %q", netName, termName)
	}
	return d.attach(netName, t)
}

func (d *Design) attach(netName string, t *Terminal) error {
	if t.Net != nil {
		if t.Net.Name == netName {
			return nil // duplicate record; harmless
		}
		return fmt.Errorf("netlist: terminal %s already on net %q, cannot join %q",
			t.Label(), t.Net.Name, netName)
	}
	n := d.ensureNet(netName)
	n.Terms = append(n.Terms, t)
	t.Net = n
	return nil
}

// NetsBetween returns the number of distinct nets that connect module m
// with at least one module of set (excluding m itself). This is the
// connection count "( N n: n in N : (E m': ... (m,m')connected(n) ) )"
// used throughout §4.6.3.
func NetsBetween(m *Module, set map[*Module]bool) int {
	// A net counts once even if m touches it through several terminals.
	seen := map[*Net]bool{}
	count := 0
	for _, t := range m.Terms {
		n := t.Net
		if n == nil || seen[n] {
			continue
		}
		seen[n] = true
		for _, u := range n.Terms {
			if u.Module != nil && u.Module != m && set[u.Module] {
				count++
				break
			}
		}
	}
	return count
}

// Connected reports whether modules a and b share at least one net, the
// connected() relation of §4.6.2.
func Connected(a, b *Module) bool {
	for _, t := range a.Terms {
		if t.Net == nil {
			continue
		}
		for _, u := range t.Net.Terms {
			if u.Module == b {
				return true
			}
		}
	}
	return false
}

// ModuleSet returns the design's modules as a set, convenient for the
// connectivity helpers.
func (d *Design) ModuleSet() map[*Module]bool {
	s := make(map[*Module]bool, len(d.Modules))
	for _, m := range d.Modules {
		s[m] = true
	}
	return s
}

// Validate checks structural consistency of the design: every net has at
// least min terminals, every terminal position is on its module
// boundary, and names are consistent with the lookup maps.
func (d *Design) Validate(minNetDegree int) error {
	for _, m := range d.Modules {
		for _, t := range m.Terms {
			if _, err := t.Side(); err != nil {
				return err
			}
		}
	}
	for _, n := range d.Nets {
		if n.Degree() < minNetDegree {
			return fmt.Errorf("netlist: net %q connects %d terminal(s), want >= %d",
				n.Name, n.Degree(), minNetDegree)
		}
		for _, t := range n.Terms {
			if t.Net != n {
				return fmt.Errorf("netlist: terminal %s back-pointer mismatch on net %q",
					t.Label(), n.Name)
			}
		}
	}
	return nil
}

// Stats summarizes a design for reporting: module, net, terminal counts
// and the multipoint-net count.
type Stats struct {
	Modules    int
	Nets       int
	SysTerms   int
	Terminals  int
	Multipoint int // nets with more than two terminals
}

// Stats computes summary statistics.
func (d *Design) Stats() Stats {
	s := Stats{Modules: len(d.Modules), Nets: len(d.Nets), SysTerms: len(d.SysTerms)}
	for _, m := range d.Modules {
		s.Terminals += len(m.Terms)
	}
	s.Terminals += len(d.SysTerms)
	for _, n := range d.Nets {
		if n.Degree() > 2 {
			s.Multipoint++
		}
	}
	return s
}

// SortedNets returns the nets ordered by name; generation code iterates
// this for deterministic output.
func (d *Design) SortedNets() []*Net {
	out := append([]*Net(nil), d.Nets...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
