package netlist_test

import (
	"strings"
	"testing"

	"netart/internal/library"
	"netart/internal/netlist"
)

// FuzzParseDesign drives netlist.Load with arbitrary call/net-list/io
// text resolved against the builtin library. The parser must never
// panic; for inputs it accepts, the design must survive a write →
// re-parse round trip that preserves the module, net, and system
// terminal counts. Appendix A is a whitespace-separated record format,
// so the fuzzer mostly explores field counts, duplicate names, unknown
// templates/terminals, the "root" instance marker, and comment/blank
// handling.
func FuzzParseDesign(f *testing.F) {
	lib := library.Builtin()

	// Seeds: one valid two-gate design, an io-less design, and a few
	// near-miss shapes so the fuzzer starts at the interesting edges.
	f.Add("a INV\nb INV\n", "n1 a Y\nn1 b A\nn2 root SIN\nn2 a A\n", "SIN in\n")
	f.Add("g0 NAND2\n# comment\ng1 DFF\n", "clk root CK\nclk g1 CLK\nd g0 Y\nd g1 D\n", "CK in\n")
	f.Add("x AND2\n", "n x Y\nn x A\n", "")
	f.Add("x NOPE\n", "n x Y\n", "")            // unknown template
	f.Add("x INV\nx INV\n", "n x Y\n", "")      // duplicate instance
	f.Add("x INV\n", "n root T\n", "T sideways") // bad io type
	f.Add("x INV extra\n", "", "")              // wrong field count
	f.Add("", "n root T\n", "T in\nT out\n")    // duplicate system terminal

	f.Fuzz(func(t *testing.T, calls, nets, ios string) {
		var ioR *strings.Reader
		if ios != "" {
			ioR = strings.NewReader(ios)
		}
		d, err := load("fuzz", calls, nets, ioR, lib)
		if err != nil {
			return // rejection is fine; panicking is not
		}

		// Round trip: anything Load accepted must re-serialize into a
		// form Load accepts again, with identical shape.
		var cb, nb, ib strings.Builder
		if err := netlist.WriteCallFile(&cb, d); err != nil {
			t.Fatalf("WriteCallFile: %v", err)
		}
		if err := netlist.WriteNetListFile(&nb, d); err != nil {
			t.Fatalf("WriteNetListFile: %v", err)
		}
		if err := netlist.WriteIOFile(&ib, d); err != nil {
			t.Fatalf("WriteIOFile: %v", err)
		}
		var ioR2 *strings.Reader
		if ib.Len() > 0 {
			ioR2 = strings.NewReader(ib.String())
		}
		d2, err := load("fuzz2", cb.String(), nb.String(), ioR2, lib)
		if err != nil {
			t.Fatalf("round trip rejected:\ncalls:\n%s\nnets:\n%s\nio:\n%s\nerr: %v",
				cb.String(), nb.String(), ib.String(), err)
		}
		if len(d2.Modules) != len(d.Modules) || len(d2.Nets) != len(d.Nets) ||
			len(d2.SysTerms) != len(d.SysTerms) {
			t.Fatalf("round trip changed shape: modules %d→%d nets %d→%d sys %d→%d",
				len(d.Modules), len(d2.Modules), len(d.Nets), len(d2.Nets),
				len(d.SysTerms), len(d2.SysTerms))
		}

		// Validate must classify, never panic, on whatever Load built.
		_ = d.Validate(1)
	})
}

// load adapts strings to netlist.Load's reader interface, passing a
// truly nil io reader when absent (the interface-holding-nil-pointer
// trap is exactly the kind of edge this fuzz target watches).
func load(name, calls, nets string, ioR *strings.Reader, lib *library.Library) (*netlist.Design, error) {
	var r interface {
		Read([]byte) (int, error)
	}
	if ioR != nil {
		r = ioR
	}
	return netlist.Load(name, strings.NewReader(calls), strings.NewReader(nets), r, lib)
}
