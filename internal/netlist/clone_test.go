package netlist_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"netart/internal/gen"
	"netart/internal/netlist"
	"netart/internal/workload"
)

// snapshot serializes every field of the design that any pipeline stage
// could conceivably touch: module geometry, terminal positions/types,
// net membership order, and system terminals. Two designs with equal
// snapshots are structurally identical.
func snapshot(d *netlist.Design) string {
	var b strings.Builder
	fmt.Fprintf(&b, "design %s\n", d.Name)
	for _, m := range d.Modules {
		fmt.Fprintf(&b, "module %s template=%s w=%d h=%d\n", m.Name, m.Template, m.W, m.H)
		for _, t := range m.Terms {
			net := "-"
			if t.Net != nil {
				net = t.Net.Name
			}
			fmt.Fprintf(&b, "  term %s type=%v pos=%v net=%s\n", t.Name, t.Type, t.Pos, net)
		}
	}
	for _, st := range d.SysTerms {
		net := "-"
		if st.Net != nil {
			net = st.Net.Name
		}
		fmt.Fprintf(&b, "systerm %s type=%v pos=%v net=%s\n", st.Name, st.Type, st.Pos, net)
	}
	for _, n := range d.Nets {
		fmt.Fprintf(&b, "net %s:", n.Name)
		for _, t := range n.Terms {
			fmt.Fprintf(&b, " %s", t.Label())
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// TestCloneDeepCopy asserts the clone is structurally identical but
// shares no pointers with the original.
func TestCloneDeepCopy(t *testing.T) {
	d := workload.Datapath16()
	c := d.Clone()

	if got, want := snapshot(c), snapshot(d); got != want {
		t.Fatalf("clone snapshot differs from original:\n--- clone\n%s\n--- original\n%s", got, want)
	}
	if len(d.Modules) == 0 || len(d.Nets) == 0 {
		t.Fatal("workload unexpectedly empty")
	}
	for i, m := range d.Modules {
		cm := c.Modules[i]
		if m == cm {
			t.Fatalf("module %q shared between original and clone", m.Name)
		}
		for j, term := range m.Terms {
			if term == cm.Terms[j] {
				t.Fatalf("terminal %s shared between original and clone", term.Label())
			}
			if cm.Terms[j].Module != cm {
				t.Fatalf("clone terminal %s points at foreign module", cm.Terms[j].Label())
			}
			if term.Net != nil && term.Net == cm.Terms[j].Net {
				t.Fatalf("net %q shared through terminal %s", term.Net.Name, term.Label())
			}
		}
	}
	for i, n := range d.Nets {
		if n == c.Nets[i] {
			t.Fatalf("net %q shared between original and clone", n.Name)
		}
		if c.Net(n.Name) != c.Nets[i] {
			t.Fatalf("clone lookup map misses net %q", n.Name)
		}
	}
	for i, st := range d.SysTerms {
		if st == c.SysTerms[i] {
			t.Fatalf("system terminal %q shared", st.Name)
		}
	}
	if err := c.Validate(1); err != nil {
		t.Fatalf("clone fails validation: %v", err)
	}
}

// TestCloneIsolatesGeneration guards the placement-mutates-design
// hazard: running the full Generate pipeline on a clone must leave the
// original design byte-identical.
func TestCloneIsolatesGeneration(t *testing.T) {
	d := workload.Datapath16()
	before := snapshot(d)

	clone := d.Clone()
	if _, err := gen.Run(context.Background(), clone, gen.DefaultOptions()); err != nil {
		t.Fatalf("Run(clone): %v", err)
	}

	if after := snapshot(d); after != before {
		t.Errorf("Generate on a clone mutated the original design:\n--- before\n%s\n--- after\n%s", before, after)
	}
}

// TestCloneIndependentMutation asserts edits to the clone do not leak
// back.
func TestCloneIndependentMutation(t *testing.T) {
	d := workload.Fig61()
	before := snapshot(d)
	c := d.Clone()
	c.Modules[0].W += 7
	c.Modules[0].Terms[0].Pos.Y++
	if after := snapshot(d); after != before {
		t.Error("mutating clone changed the original")
	}
}
