package netlist

import (
	"strings"
	"testing"

	"netart/internal/geom"
)

// buildPair returns a design with two connected modules for reuse in
// tests: A.Y -- n1 -- B.A, plus system terminal SIN -- n2 -- A.A.
func buildPair(t *testing.T) *Design {
	t.Helper()
	d := NewDesign("pair")
	mustModule(t, d, "A", 3, 3)
	mustModule(t, d, "B", 3, 3)
	if _, err := d.AddSysTerm("SIN", In); err != nil {
		t.Fatal(err)
	}
	mustConnect(t, d, "n1", "A", "Y")
	mustConnect(t, d, "n1", "B", "A")
	mustConnect(t, d, "n2", "A", "A")
	if err := d.ConnectSys("n2", "SIN"); err != nil {
		t.Fatal(err)
	}
	return d
}

func mustModule(t *testing.T, d *Design, name string, w, h int) *Module {
	t.Helper()
	m, err := d.AddModule(name, "G", w, h, []TermSpec{
		{Name: "A", Type: In, Pos: geom.Pt(0, 1)},
		{Name: "Y", Type: Out, Pos: geom.Pt(w, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustConnect(t *testing.T, d *Design, net, mod, term string) {
	t.Helper()
	if err := d.Connect(net, mod, term); err != nil {
		t.Fatal(err)
	}
}

func TestTermTypeParsing(t *testing.T) {
	for _, s := range []string{"in", "out", "inout"} {
		typ, err := ParseTermType(s)
		if err != nil {
			t.Fatal(err)
		}
		if typ.String() != s {
			t.Errorf("round trip %q -> %q", s, typ)
		}
	}
	if _, err := ParseTermType("bogus"); err == nil {
		t.Error("expected error for bogus type")
	}
}

func TestTermTypeDriveSink(t *testing.T) {
	if In.CanDrive() || !In.CanSink() {
		t.Error("In drive/sink wrong")
	}
	if !Out.CanDrive() || Out.CanSink() {
		t.Error("Out drive/sink wrong")
	}
	if !InOut.CanDrive() || !InOut.CanSink() {
		t.Error("InOut drive/sink wrong")
	}
}

func TestTerminalSide(t *testing.T) {
	d := NewDesign("t")
	m, err := d.AddModule("M", "", 4, 3, []TermSpec{
		{Name: "L", Type: In, Pos: geom.Pt(0, 1)},
		{Name: "R", Type: Out, Pos: geom.Pt(4, 2)},
		{Name: "U", Type: In, Pos: geom.Pt(2, 3)},
		{Name: "D", Type: In, Pos: geom.Pt(1, 0)},
		{Name: "LL", Type: In, Pos: geom.Pt(0, 0)}, // corner resolves to left
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]geom.Dir{"L": geom.Left, "R": geom.Right, "U": geom.Up, "D": geom.Down, "LL": geom.Left}
	for name, dir := range want {
		got, err := m.Term(name).Side()
		if err != nil {
			t.Fatal(err)
		}
		if got != dir {
			t.Errorf("side(%s) = %v, want %v", name, got, dir)
		}
	}
}

func TestAddModuleRejectsBadGeometry(t *testing.T) {
	d := NewDesign("t")
	if _, err := d.AddModule("M", "", 4, 3, []TermSpec{
		{Name: "X", Type: In, Pos: geom.Pt(2, 1)}, // interior
	}); err == nil {
		t.Error("interior terminal accepted")
	}
	if _, err := d.AddModule("M2", "", 0, 3, nil); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := d.AddModule("", "", 1, 1, nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := d.AddModule("M3", "", 4, 3, []TermSpec{
		{Name: "X", Type: In, Pos: geom.Pt(0, 1)},
		{Name: "X", Type: In, Pos: geom.Pt(4, 1)},
	}); err == nil {
		t.Error("duplicate terminal accepted")
	}
}

func TestDuplicateNamesRejected(t *testing.T) {
	d := buildPair(t)
	if _, err := d.AddModule("A", "", 2, 2, nil); err == nil {
		t.Error("duplicate module accepted")
	}
	if _, err := d.AddSysTerm("SIN", Out); err == nil {
		t.Error("duplicate system terminal accepted")
	}
}

func TestConnectErrors(t *testing.T) {
	d := buildPair(t)
	if err := d.Connect("nx", "ZZ", "A"); err == nil {
		t.Error("unknown module accepted")
	}
	if err := d.Connect("nx", "A", "ZZ"); err == nil {
		t.Error("unknown terminal accepted")
	}
	if err := d.ConnectSys("nx", "ZZ"); err == nil {
		t.Error("unknown system terminal accepted")
	}
	// A terminal may not join two different nets.
	if err := d.Connect("other", "A", "Y"); err == nil {
		t.Error("terminal on two nets accepted")
	}
	// Re-recording the same membership is harmless.
	if err := d.Connect("n1", "A", "Y"); err != nil {
		t.Errorf("duplicate record rejected: %v", err)
	}
	if got := d.Net("n1").Degree(); got != 2 {
		t.Errorf("duplicate record changed degree to %d", got)
	}
}

func TestLookups(t *testing.T) {
	d := buildPair(t)
	if d.Module("A") == nil || d.Module("nope") != nil {
		t.Error("Module lookup wrong")
	}
	if d.Net("n1") == nil || d.Net("nope") != nil {
		t.Error("Net lookup wrong")
	}
	if d.SysTerm("SIN") == nil || d.SysTerm("nope") != nil {
		t.Error("SysTerm lookup wrong")
	}
}

func TestConnectedAndNetsBetween(t *testing.T) {
	d := buildPair(t)
	a, b := d.Module("A"), d.Module("B")
	if !Connected(a, b) || !Connected(b, a) {
		t.Error("A and B should be connected")
	}
	c := mustModule(t, d, "C", 3, 3)
	if Connected(a, c) {
		t.Error("A and C should not be connected")
	}
	if got := NetsBetween(a, map[*Module]bool{b: true}); got != 1 {
		t.Errorf("NetsBetween(A,{B}) = %d, want 1", got)
	}
	if got := NetsBetween(c, map[*Module]bool{a: true, b: true}); got != 0 {
		t.Errorf("NetsBetween(C,{A,B}) = %d, want 0", got)
	}
}

func TestNetsBetweenCountsNetsOnce(t *testing.T) {
	// A net touching m through two of its own terminals still counts once.
	d := NewDesign("t")
	m, err := d.AddModule("M", "", 4, 4, []TermSpec{
		{Name: "P", Type: InOut, Pos: geom.Pt(0, 1)},
		{Name: "Q", Type: InOut, Pos: geom.Pt(0, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	other := mustModule(t, d, "O", 3, 3)
	mustConnect(t, d, "n", "M", "P")
	mustConnect(t, d, "n", "M", "Q")
	mustConnect(t, d, "n", "O", "A")
	if got := NetsBetween(m, map[*Module]bool{other: true}); got != 1 {
		t.Errorf("NetsBetween = %d, want 1", got)
	}
}

func TestValidate(t *testing.T) {
	d := buildPair(t)
	if err := d.Validate(2); err != nil {
		t.Errorf("valid design rejected: %v", err)
	}
	mustConnect(t, d, "dangling", "B", "Y")
	if err := d.Validate(2); err == nil {
		t.Error("single-terminal net accepted with minNetDegree=2")
	}
	if err := d.Validate(1); err != nil {
		t.Errorf("minNetDegree=1 should accept: %v", err)
	}
}

func TestStats(t *testing.T) {
	d := buildPair(t)
	s := d.Stats()
	if s.Modules != 2 || s.Nets != 2 || s.SysTerms != 1 {
		t.Errorf("Stats = %+v", s)
	}
	if s.Terminals != 5 { // 2 per module + 1 system
		t.Errorf("Terminals = %d, want 5", s.Terminals)
	}
	if s.Multipoint != 0 {
		t.Errorf("Multipoint = %d, want 0", s.Multipoint)
	}
	mustConnect(t, d, "n1", "B", "Y") // now n1 has 3 terminals
	if got := d.Stats().Multipoint; got != 1 {
		t.Errorf("Multipoint = %d, want 1", got)
	}
}

func TestSortedNets(t *testing.T) {
	d := NewDesign("t")
	mustModule(t, d, "M", 3, 3)
	mustModule(t, d, "N", 3, 3)
	mustConnect(t, d, "zz", "M", "A")
	mustConnect(t, d, "aa", "M", "Y")
	mustConnect(t, d, "aa", "N", "A")
	mustConnect(t, d, "zz", "N", "Y")
	got := d.SortedNets()
	if got[0].Name != "aa" || got[1].Name != "zz" {
		t.Errorf("SortedNets order: %s, %s", got[0].Name, got[1].Name)
	}
}

func TestTerminalLabel(t *testing.T) {
	d := buildPair(t)
	if got := d.Module("A").Term("Y").Label(); got != "A.Y" {
		t.Errorf("Label = %q", got)
	}
	if got := d.SysTerm("SIN").Label(); got != "root.SIN" {
		t.Errorf("Label = %q", got)
	}
	if !d.SysTerm("SIN").IsSystem() {
		t.Error("IsSystem false for system terminal")
	}
	if d.Module("A").Term("Y").IsSystem() {
		t.Error("IsSystem true for subsystem terminal")
	}
	if _, err := d.SysTerm("SIN").Side(); err == nil {
		t.Error("Side() of system terminal should error")
	}
}

func TestModuleHelpers(t *testing.T) {
	d := buildPair(t)
	m := d.Module("A")
	if m.Term("A") == nil || m.Term("nope") != nil {
		t.Error("Term lookup wrong")
	}
	if m.Size() != geom.Pt(3, 3) {
		t.Error("Size wrong")
	}
}

func TestLoadRoundTrip(t *testing.T) {
	src := specSource{
		"G": {Name: "G", W: 3, H: 3, Terms: []TermSpec{
			{Name: "A", Type: In, Pos: geom.Pt(0, 1)},
			{Name: "Y", Type: Out, Pos: geom.Pt(3, 1)},
		}},
	}
	call := "m0 G\nm1 G\n"
	nets := "w m0 Y\nw m1 A\nx root X\nx m0 A\n"
	io := "X in\n"
	d, err := Load("rt", strings.NewReader(call), strings.NewReader(nets), strings.NewReader(io), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Modules) != 2 || len(d.Nets) != 2 || len(d.SysTerms) != 1 {
		t.Fatalf("loaded %d modules, %d nets, %d sysTerms", len(d.Modules), len(d.Nets), len(d.SysTerms))
	}

	var cb, nb, ib strings.Builder
	if err := WriteCallFile(&cb, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteNetListFile(&nb, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteIOFile(&ib, d); err != nil {
		t.Fatal(err)
	}
	d2, err := Load("rt2", strings.NewReader(cb.String()), strings.NewReader(nb.String()),
		strings.NewReader(ib.String()), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Modules) != len(d.Modules) || len(d2.Nets) != len(d.Nets) {
		t.Error("round trip lost modules or nets")
	}
	for _, n := range d.Nets {
		n2 := d2.Net(n.Name)
		if n2 == nil || n2.Degree() != n.Degree() {
			t.Errorf("net %q degree changed", n.Name)
		}
	}
}

func TestLoadWithoutIOFile(t *testing.T) {
	src := specSource{
		"G": {Name: "G", W: 3, H: 3, Terms: []TermSpec{
			{Name: "A", Type: In, Pos: geom.Pt(0, 1)},
			{Name: "Y", Type: Out, Pos: geom.Pt(3, 1)},
		}},
	}
	d, err := Load("noio", strings.NewReader("m0 G\nm1 G\n"),
		strings.NewReader("w m0 Y\nw m1 A\n"), nil, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.SysTerms) != 0 {
		t.Error("unexpected system terminals")
	}
}

func TestLoadErrors(t *testing.T) {
	src := specSource{}
	_, err := Load("e", strings.NewReader("m0 MISSING\n"), strings.NewReader(""), nil, src)
	if err == nil {
		t.Error("unknown template accepted")
	}
	_, err = Load("e", strings.NewReader("bad\n"), strings.NewReader(""), nil, src)
	if err == nil {
		t.Error("malformed call record accepted")
	}
	_, err = Load("e", strings.NewReader(""), strings.NewReader("a b\n"), nil, src)
	if err == nil {
		t.Error("malformed net record accepted")
	}
	_, err = Load("e", strings.NewReader(""), strings.NewReader(""),
		strings.NewReader("X sideways\n"), src)
	if err == nil {
		t.Error("malformed io record accepted")
	}
}

func TestParseFilesSkipCommentsAndBlanks(t *testing.T) {
	recs, err := ParseCallFile(strings.NewReader("# comment\n\nm0 G\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0] != (CallRecord{"m0", "G"}) {
		t.Errorf("got %+v", recs)
	}
}

// specSource is a trivial TemplateSource for tests.
type specSource map[string]TemplateSpec

func (s specSource) Template(name string) (TemplateSpec, error) {
	spec, ok := s[name]
	if !ok {
		return TemplateSpec{}, errUnknown(name)
	}
	return spec, nil
}

type errUnknown string

func (e errUnknown) Error() string { return "unknown template " + string(e) }
