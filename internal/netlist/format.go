package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file implements the Appendix A network description: three
// whitespace-separated record files.
//
//	call-file:     <INSTANCE> <TEMPLATE>
//	io-file:       <TERMINAL> <TYPE>            (type: in | out | inout)
//	net-list-file: <NET> <INSTANCE> <TERMINAL>  (instance "root" = system)
//
// Records are variable-length lines; fields are separated by blanks or
// tabs. Blank lines and lines starting with '#' are tolerated (the 1989
// format has no comments, but accepting them costs nothing and makes the
// example files self-describing).

// RootInstance is the instance name that marks a system terminal in a
// net-list record (Appendix A).
const RootInstance = "root"

// TemplateSpec is the geometric description of a module template as the
// loader needs it: size and terminal list. The library package produces
// these from Appendix B/C descriptions.
type TemplateSpec struct {
	Name  string
	W, H  int
	Terms []TermSpec
}

// TemplateSource resolves template names to their geometry. Implemented
// by library.Library.
type TemplateSource interface {
	Template(name string) (TemplateSpec, error)
}

type record struct {
	line   int
	fields []string
}

func readRecords(r io.Reader, wantFields int, what string) ([]record, error) {
	var out []record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != wantFields {
			return nil, fmt.Errorf("netlist: %s line %d: want %d fields, got %d: %q",
				what, lineNo, wantFields, len(f), line)
		}
		out = append(out, record{lineNo, f})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: reading %s: %w", what, err)
	}
	return out, nil
}

// CallRecord is one <INSTANCE> <TEMPLATE> pair from a call-file.
type CallRecord struct {
	Instance, Template string
}

// ParseCallFile reads a call-file.
func ParseCallFile(r io.Reader) ([]CallRecord, error) {
	recs, err := readRecords(r, 2, "call-file")
	if err != nil {
		return nil, err
	}
	out := make([]CallRecord, len(recs))
	for i, rec := range recs {
		out[i] = CallRecord{rec.fields[0], rec.fields[1]}
	}
	return out, nil
}

// IORecord is one <TERMINAL> <TYPE> pair from an io-file.
type IORecord struct {
	Terminal string
	Type     TermType
}

// ParseIOFile reads an io-file.
func ParseIOFile(r io.Reader) ([]IORecord, error) {
	recs, err := readRecords(r, 2, "io-file")
	if err != nil {
		return nil, err
	}
	out := make([]IORecord, len(recs))
	for i, rec := range recs {
		typ, err := ParseTermType(rec.fields[1])
		if err != nil {
			return nil, fmt.Errorf("netlist: io-file line %d: %w", rec.line, err)
		}
		out[i] = IORecord{rec.fields[0], typ}
	}
	return out, nil
}

// NetRecord is one <NET> <INSTANCE> <TERMINAL> triple from a
// net-list-file.
type NetRecord struct {
	Net, Instance, Terminal string
}

// ParseNetListFile reads a net-list-file.
func ParseNetListFile(r io.Reader) ([]NetRecord, error) {
	recs, err := readRecords(r, 3, "net-list-file")
	if err != nil {
		return nil, err
	}
	out := make([]NetRecord, len(recs))
	for i, rec := range recs {
		out[i] = NetRecord{rec.fields[0], rec.fields[1], rec.fields[2]}
	}
	return out, nil
}

// Load builds a design from the three Appendix A files. The io-file
// reader may be nil when the network has no system terminals (Appendix E
// allows omitting it). Templates are resolved through src.
func Load(name string, callR, netR, ioR io.Reader, src TemplateSource) (*Design, error) {
	calls, err := ParseCallFile(callR)
	if err != nil {
		return nil, err
	}
	nets, err := ParseNetListFile(netR)
	if err != nil {
		return nil, err
	}
	var ios []IORecord
	if ioR != nil {
		ios, err = ParseIOFile(ioR)
		if err != nil {
			return nil, err
		}
	}

	d := NewDesign(name)
	for _, c := range calls {
		spec, err := src.Template(c.Template)
		if err != nil {
			return nil, fmt.Errorf("netlist: instance %q: %w", c.Instance, err)
		}
		if _, err := d.AddModule(c.Instance, c.Template, spec.W, spec.H, spec.Terms); err != nil {
			return nil, err
		}
	}
	for _, io := range ios {
		if _, err := d.AddSysTerm(io.Terminal, io.Type); err != nil {
			return nil, err
		}
	}
	for _, n := range nets {
		if n.Instance == RootInstance {
			err = d.ConnectSys(n.Net, n.Terminal)
		} else {
			err = d.Connect(n.Net, n.Instance, n.Terminal)
		}
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// WriteCallFile writes the design's instances as a call-file.
func WriteCallFile(w io.Writer, d *Design) error {
	for _, m := range d.Modules {
		tpl := m.Template
		if tpl == "" {
			tpl = m.Name
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", m.Name, tpl); err != nil {
			return err
		}
	}
	return nil
}

// WriteIOFile writes the design's system terminals as an io-file.
func WriteIOFile(w io.Writer, d *Design) error {
	for _, t := range d.SysTerms {
		if _, err := fmt.Fprintf(w, "%s %s\n", t.Name, t.Type); err != nil {
			return err
		}
	}
	return nil
}

// WriteNetListFile writes the design's connections as a net-list-file,
// ordered by net name then terminal label for determinism.
func WriteNetListFile(w io.Writer, d *Design) error {
	for _, n := range d.SortedNets() {
		terms := append([]*Terminal(nil), n.Terms...)
		sort.Slice(terms, func(i, j int) bool { return terms[i].Label() < terms[j].Label() })
		for _, t := range terms {
			inst := RootInstance
			if t.Module != nil {
				inst = t.Module.Name
			}
			if _, err := fmt.Fprintf(w, "%s %s %s\n", n.Name, inst, t.Name); err != nil {
				return err
			}
		}
	}
	return nil
}
