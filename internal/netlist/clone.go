package netlist

// Clone returns a deep copy of the design: fresh Module, Terminal and
// Net values with all cross-pointers (terminal→module, terminal→net,
// net→terminal) remapped into the copy. The original and the clone
// share no mutable state, so one parsed design can serve many
// concurrent generations — the placement phase reorients modules and
// assigns positions through the design's pointers, which makes running
// two generations over the *same* Design value a data race; the
// service layer clones per request instead (see internal/service).
func (d *Design) Clone() *Design {
	nd := NewDesign(d.Name)
	termMap := make(map[*Terminal]*Terminal)

	for _, m := range d.Modules {
		nm := &Module{
			Name:     m.Name,
			Template: m.Template,
			W:        m.W,
			H:        m.H,
			Terms:    make([]*Terminal, 0, len(m.Terms)),
		}
		for _, t := range m.Terms {
			nt := &Terminal{Name: t.Name, Type: t.Type, Pos: t.Pos, Module: nm}
			nm.Terms = append(nm.Terms, nt)
			termMap[t] = nt
		}
		nd.Modules = append(nd.Modules, nm)
		nd.modByName[nm.Name] = nm
	}
	for _, st := range d.SysTerms {
		nt := &Terminal{Name: st.Name, Type: st.Type, Pos: st.Pos}
		termMap[st] = nt
		nd.SysTerms = append(nd.SysTerms, nt)
		nd.sysByName[nt.Name] = nt
	}
	for _, n := range d.Nets {
		nn := &Net{Name: n.Name, Terms: make([]*Terminal, 0, len(n.Terms))}
		for _, t := range n.Terms {
			nt := termMap[t]
			nn.Terms = append(nn.Terms, nt)
			nt.Net = nn
		}
		nd.Nets = append(nd.Nets, nn)
		nd.netByName[nn.Name] = nn
	}
	return nd
}
