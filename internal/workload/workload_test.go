package workload

import (
	"testing"

	"netart/internal/netlist"
)

func TestFig61Counts(t *testing.T) {
	d := Fig61()
	s := d.Stats()
	// Table 6.1 row for figure 6.1: 6 modules, 6 nets.
	if s.Modules != 6 || s.Nets != 6 {
		t.Fatalf("fig61: %d modules, %d nets; want 6, 6", s.Modules, s.Nets)
	}
	if err := d.Validate(2); err != nil {
		t.Fatal(err)
	}
}

func TestChain(t *testing.T) {
	for _, n := range []int{1, 2, 10, 40} {
		d := Chain(n)
		s := d.Stats()
		if s.Modules != n || s.Nets != n {
			t.Errorf("chain(%d): %d modules, %d nets", n, s.Modules, s.Nets)
		}
		if err := d.Validate(2); err != nil {
			t.Errorf("chain(%d): %v", n, err)
		}
	}
}

func TestDatapath16Counts(t *testing.T) {
	d := Datapath16()
	s := d.Stats()
	// Table 6.1 rows for figures 6.2-6.5: 16 modules, 24 nets.
	if s.Modules != 16 || s.Nets != 24 {
		t.Fatalf("datapath16: %d modules, %d nets; want 16, 24", s.Modules, s.Nets)
	}
	if err := d.Validate(2); err != nil {
		t.Fatal(err)
	}
	// The controller must be the connectivity centre: connected to more
	// nets than any datapath module.
	ctrl := d.Module("ctrl")
	ctrlNets := netlist.NetsBetween(ctrl, d.ModuleSet())
	for _, m := range d.Modules {
		if m == ctrl {
			continue
		}
		if n := netlist.NetsBetween(m, d.ModuleSet()); n > ctrlNets {
			t.Errorf("module %s has %d nets > controller's %d", m.Name, n, ctrlNets)
		}
	}
}

func TestLife27Counts(t *testing.T) {
	d := Life27()
	s := d.Stats()
	// Table 6.1 rows for figures 6.6/6.7: 27 modules, 222 nets.
	if s.Modules != 27 || s.Nets != 222 {
		t.Fatalf("life27: %d modules, %d nets; want 27, 222", s.Modules, s.Nets)
	}
	if err := d.Validate(2); err != nil {
		t.Fatal(err)
	}
	if s.SysTerms != 76 { // 25 observers + 51 border inputs
		t.Errorf("life27: %d system terminals, want 76", s.SysTerms)
	}
	// The phase net reaches all 25 cells plus the sequencer.
	phase := d.Net("phase")
	if phase == nil || phase.Degree() != 26 {
		t.Errorf("phase net degree = %v, want 26", phase)
	}
}

func TestLife27Neighbours(t *testing.T) {
	d := Life27()
	// Cell (1,1)'s south output must reach cell (2,1)'s north input.
	n := d.Net("nb_1_1_OS")
	if n == nil {
		t.Fatal("missing net nb_1_1_OS")
	}
	found := false
	for _, tm := range n.Terms {
		if tm.Module != nil && tm.Module.Name == "cell_2_1" && tm.Name == "IN" {
			found = true
		}
	}
	if !found {
		t.Error("nb_1_1_OS should reach cell_2_1.IN")
	}
	// No wrap-around: cell (0,0) has no in-grid driver above, so its
	// north-fed input comes from a border system terminal.
	if d.Net("nb_0_0_ON") == nil {
		// ON of cell (0,0) would leave the grid: no such net.
		t.Log("nb_0_0_ON correctly absent")
	} else {
		t.Error("wrap-around net nb_0_0_ON should not exist")
	}
	// Every neighbour net is two-point.
	for _, n := range d.Nets {
		if len(n.Name) > 3 && n.Name[:3] == "nb_" && n.Degree() != 2 {
			t.Errorf("neighbour net %s degree %d", n.Name, n.Degree())
		}
	}
}

func TestLifeHandPlacementCoversAllModules(t *testing.T) {
	d := Life27()
	hp := LifeHandPlacement()
	if len(hp) != len(d.Modules) {
		t.Fatalf("hand placement covers %d of %d modules", len(hp), len(d.Modules))
	}
	for _, m := range d.Modules {
		if _, ok := hp[m.Name]; !ok {
			t.Errorf("module %s missing from hand placement", m.Name)
		}
	}
	// No two modules overlap in the hand placement.
	type rect struct{ x0, y0, x1, y1 int }
	var rects []rect
	for _, m := range d.Modules {
		p := hp[m.Name]
		w, h := p.Orient.RotateSize(m.W, m.H)
		r := rect{p.Pos.X, p.Pos.Y, p.Pos.X + w, p.Pos.Y + h}
		for _, q := range rects {
			if r.x0 < q.x1 && q.x0 < r.x1 && r.y0 < q.y1 && q.y0 < r.y1 {
				t.Fatalf("hand placement overlap at module %s", m.Name)
			}
		}
		rects = append(rects, r)
	}
}

func TestDatapath16HandTweak(t *testing.T) {
	d := Datapath16()
	tw := Datapath16HandTweak()
	for name := range tw {
		if d.Module(name) == nil {
			t.Errorf("tweak names unknown module %q", name)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(20, 7)
	b := Random(20, 7)
	sa, sb := a.Stats(), b.Stats()
	if sa != sb {
		t.Errorf("same seed, different stats: %+v vs %+v", sa, sb)
	}
	c := Random(20, 8)
	if c.Stats() == sa {
		t.Log("different seeds produced identical stats (possible but unusual)")
	}
	for _, n := range a.Nets {
		for _, tm := range n.Terms {
			if tm.Net != n {
				t.Fatal("net back-pointer broken")
			}
		}
	}
}

func TestRandomSizes(t *testing.T) {
	for _, n := range []int{5, 30} {
		d := Random(n, 1)
		if len(d.Modules) != n {
			t.Errorf("Random(%d): %d modules", n, len(d.Modules))
		}
		if len(d.Nets) == 0 {
			t.Errorf("Random(%d): no nets", n)
		}
	}
}

func TestCPUCounts(t *testing.T) {
	d := CPU()
	if err := d.Validate(2); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Modules != 21 {
		t.Errorf("cpu: %d modules, want 21", s.Modules)
	}
	if s.Nets < 25 {
		t.Errorf("cpu: only %d nets", s.Nets)
	}
	if s.Multipoint < 4 {
		t.Errorf("cpu: only %d multipoint nets", s.Multipoint)
	}
}
