package workload

import (
	"netart/internal/library"
	"netart/internal/netlist"
)

// Quickstart builds the small synchronous pipeline of
// examples/quickstart: two registers around an adder with a comparator
// watching the result — 4 modules, 6 nets, 4 system terminals. It is
// the canonical "first design" of the README and doubles as a compact
// golden-corpus workload: big enough to exercise partitioning, string
// formation and system-terminal routing, small enough that a diff in
// its pinned rendering is reviewable by eye.
//
// Placed with -p 4 -b 4 (the options the example uses) it produces a
// single-partition diagram.
func Quickstart() *netlist.Design {
	lib := library.Builtin()
	d := netlist.NewDesign("quickstart")

	mustModule(d, lib, "in_reg", "REG")
	mustModule(d, lib, "adder", "ADD")
	mustModule(d, lib, "out_reg", "REG")
	mustModule(d, lib, "watch", "CMP")

	for _, st := range []struct {
		name string
		typ  netlist.TermType
	}{{"DIN", netlist.In}, {"CLK", netlist.In}, {"DOUT", netlist.Out}, {"ALARM", netlist.Out}} {
		_, err := d.AddSysTerm(st.name, st.typ)
		must(err)
	}

	must(d.ConnectSys("din", "DIN"))
	must(d.Connect("din", "in_reg", "D"))

	must(d.Connect("a", "in_reg", "Q"))
	must(d.Connect("a", "adder", "A"))
	must(d.Connect("a", "adder", "B"))

	must(d.Connect("sum", "adder", "S"))
	must(d.Connect("sum", "out_reg", "D"))
	must(d.Connect("sum", "watch", "A"))

	must(d.Connect("dout", "out_reg", "Q"))
	must(d.ConnectSys("dout", "DOUT"))

	must(d.Connect("alarm", "watch", "GT"))
	must(d.ConnectSys("alarm", "ALARM"))

	must(d.ConnectSys("clk", "CLK"))
	must(d.Connect("clk", "in_reg", "CLK"))
	must(d.Connect("clk", "out_reg", "CLK"))

	return d
}
