// Package workload constructs the evaluation networks of Koster & Stok
// §6 — the string of figure 6.1, the 16-module/24-net controller +
// datapath network of figures 6.2–6.5, and the 27-module/222-net game
// of LIFE network of figures 6.6/6.7 — plus a seeded random network
// generator for property tests and ablations.
//
// The authors' original netlists are not published; these are
// deterministic synthetic equivalents with exactly the module and net
// counts of Table 6.1 (see DESIGN.md, "Substitutions").
package workload

import (
	"fmt"
	"math/rand"

	"netart/internal/geom"
	"netart/internal/library"
	"netart/internal/netlist"
)

// must panics on error: the workloads are static data, so construction
// errors are programming mistakes.
func must(err error) {
	if err != nil {
		panic("workload: " + err.Error())
	}
}

func mustModule(d *netlist.Design, lib *library.Library, name, template string) *netlist.Module {
	spec, err := lib.Template(template)
	must(err)
	m, err := d.AddModule(name, template, spec.W, spec.H, spec.Terms)
	must(err)
	return m
}

// Fig61 builds the network of figure 6.1: six modules forming a single
// string, six nets (one system input plus five chain nets). Placed with
// -p 6 -b 6 it yields one partition containing one box.
func Fig61() *netlist.Design {
	lib := library.Builtin()
	d := netlist.NewDesign("fig61")
	templates := []string{"BUF", "INV", "AND2", "OR2", "XOR2", "INV"}
	for i, tpl := range templates {
		mustModule(d, lib, fmt.Sprintf("m%d", i), tpl)
	}
	_, err := d.AddSysTerm("IN", netlist.In)
	must(err)
	must(d.ConnectSys("n0", "IN"))
	must(d.Connect("n0", "m0", "A"))
	for i := 0; i < 5; i++ {
		net := fmt.Sprintf("n%d", i+1)
		must(d.Connect(net, fmt.Sprintf("m%d", i), "Y"))
		must(d.Connect(net, fmt.Sprintf("m%d", i+1), "A"))
	}
	return d
}

// Chain builds a string of n INV modules connected head to tail with a
// system input, for scaling experiments. It has n modules and n nets.
func Chain(n int) *netlist.Design {
	lib := library.Builtin()
	d := netlist.NewDesign(fmt.Sprintf("chain%d", n))
	for i := 0; i < n; i++ {
		mustModule(d, lib, fmt.Sprintf("m%d", i), "INV")
	}
	_, err := d.AddSysTerm("IN", netlist.In)
	must(err)
	must(d.ConnectSys("c0", "IN"))
	must(d.Connect("c0", "m0", "A"))
	for i := 0; i < n-1; i++ {
		net := fmt.Sprintf("c%d", i+1)
		must(d.Connect(net, fmt.Sprintf("m%d", i), "Y"))
		must(d.Connect(net, fmt.Sprintf("m%d", i+1), "A"))
	}
	return d
}

// Datapath16 builds the network behind figures 6.2–6.5: 16 modules and
// 24 nets. A central controller (the "controller in the center" that
// figure 6.3 describes) drives three five-module datapath lanes, each a
// mux → register → ALU → register → comparator string, so partition
// sweeps with -p 1/5/7 and -b 1/5 reproduce the figures' clustering
// behaviour.
func Datapath16() *netlist.Design {
	lib := library.Builtin()
	d := netlist.NewDesign("datapath16")

	mustModule(d, lib, "ctrl", "CTRL")
	for g := 0; g < 3; g++ {
		mustModule(d, lib, fmt.Sprintf("mux%d", g), "MUX2")
		mustModule(d, lib, fmt.Sprintf("rega%d", g), "REG")
		mustModule(d, lib, fmt.Sprintf("alu%d", g), "ALU")
		mustModule(d, lib, fmt.Sprintf("regb%d", g), "REG")
		mustModule(d, lib, fmt.Sprintf("cmp%d", g), "CMP")
	}
	for _, io := range []struct {
		name string
		typ  netlist.TermType
	}{
		{"DIN0", netlist.In}, {"DIN1", netlist.In}, {"DIN2", netlist.In},
		{"DOUT", netlist.Out}, {"CLK", netlist.In},
	} {
		_, err := d.AddSysTerm(io.name, io.typ)
		must(err)
	}

	// Twelve intra-lane nets (four per lane).
	for g := 0; g < 3; g++ {
		lane := func(net, fromMod, fromTerm, toMod, toTerm string) {
			must(d.Connect(net, fmt.Sprintf(fromMod, g), fromTerm))
			must(d.Connect(net, fmt.Sprintf(toMod, g), toTerm))
		}
		lane(fmt.Sprintf("l%d_muxq", g), "mux%d", "Y", "rega%d", "D")
		lane(fmt.Sprintf("l%d_regq", g), "rega%d", "Q", "alu%d", "A")
		lane(fmt.Sprintf("l%d_aluf", g), "alu%d", "F", "regb%d", "D")
		lane(fmt.Sprintf("l%d_res", g), "regb%d", "Q", "cmp%d", "A")
	}

	// Six control nets from the central controller.
	for g := 0; g < 3; g++ {
		net := fmt.Sprintf("csel%d", g)
		must(d.Connect(net, "ctrl", fmt.Sprintf("C%d", g)))
		must(d.Connect(net, fmt.Sprintf("mux%d", g), "S"))
	}
	must(d.Connect("cena", "ctrl", "C3"))
	must(d.Connect("cena", "rega0", "EN"))
	must(d.Connect("cena", "rega1", "EN"))
	must(d.Connect("cenb", "ctrl", "C4"))
	must(d.Connect("cenb", "rega2", "EN"))
	must(d.Connect("cop", "ctrl", "C5"))
	for g := 0; g < 3; g++ {
		must(d.Connect("cop", fmt.Sprintf("alu%d", g), "OP"))
	}

	// Status feedback to the controller.
	must(d.Connect("stat", "cmp0", "EQ"))
	must(d.Connect("stat", "ctrl", "STAT"))

	// Five system nets: three data inputs, one output, the clock.
	for g := 0; g < 3; g++ {
		net := fmt.Sprintf("din%d", g)
		must(d.ConnectSys(net, fmt.Sprintf("DIN%d", g)))
		must(d.Connect(net, fmt.Sprintf("mux%d", g), "A"))
		must(d.Connect(net, fmt.Sprintf("alu%d", g), "B"))
	}
	must(d.ConnectSys("dout", "DOUT"))
	must(d.Connect("dout", "cmp2", "GT"))
	must(d.ConnectSys("clk", "CLK"))
	must(d.Connect("clk", "ctrl", "CLK"))
	for g := 0; g < 3; g++ {
		must(d.Connect("clk", fmt.Sprintf("rega%d", g), "CLK"))
		must(d.Connect("clk", fmt.Sprintf("regb%d", g), "CLK"))
	}
	return d
}

// lifeRows and lifeCols give the 5x5 cell array of the LIFE network.
const (
	lifeRows = 5
	lifeCols = 5
	// lifeBorderInputs is the number of border neighbour inputs fed
	// from system input terminals, chosen so the net total is exactly
	// 222 as in Table 6.1: 144 internal neighbour nets + clock + phase
	// + 25 state observers + 51 border inputs.
	lifeBorderInputs = 51
)

// lifeCellSpec is the workload-local cell template: eight neighbour
// inputs, eight neighbour outputs, a clock input and a state output.
func lifeCellSpec() netlist.TemplateSpec {
	in := func(name string, x, y int) netlist.TermSpec {
		return netlist.TermSpec{Name: name, Type: netlist.In, Pos: geom.Pt(x, y)}
	}
	out := func(name string, x, y int) netlist.TermSpec {
		return netlist.TermSpec{Name: name, Type: netlist.Out, Pos: geom.Pt(x, y)}
	}
	// Terminal sides match signal directions so direct neighbour nets
	// are straight wires in a grid placement: north-facing ports on
	// top, south-facing on the bottom, east/west on the sides. Aligned
	// pairs (ON under IS, OS above IN, OE across IW, OW across IE)
	// make the orthogonal neighbour nets bend-free.
	return netlist.TemplateSpec{
		Name: "LIFE8", W: 9, H: 9,
		Terms: []netlist.TermSpec{
			// Top: outputs toward and inputs from the north.
			out("ON", 1, 9), in("IN", 2, 9), out("ONE", 3, 9),
			in("INE", 4, 9), out("ONW", 5, 9), in("INW", 6, 9),
			// Bottom: mirror of the top of the row below.
			in("IS", 1, 0), out("OS", 2, 0), in("ISW", 3, 0),
			out("OSW", 4, 0), in("ISE", 5, 0), out("OSE", 6, 0),
			// Left and right, aligned across the vertical channels.
			in("IW", 0, 3), out("OW", 0, 5), in("CLK", 0, 7),
			out("OE", 9, 3), in("IE", 9, 5), out("STATE", 9, 7),
		},
	}
}

// lifeDirs lists the eight neighbour directions as (dr, dc, outTerm,
// inTerm): the OUT terminal of the cell feeds the IN terminal of the
// neighbour at (r+dr, c+dc) when that neighbour is inside the grid.
var lifeDirs = []struct {
	dr, dc  int
	out, in string
}{
	{-1, 0, "ON", "IS"}, {1, 0, "OS", "IN"},
	{0, -1, "OW", "IE"}, {0, 1, "OE", "IW"},
	{-1, -1, "ONW", "ISE"}, {-1, 1, "ONE", "ISW"},
	{1, -1, "OSW", "INE"}, {1, 1, "OSE", "INW"},
}

// Life27 builds the LIFE network of figures 6.6/6.7: 27 modules and
// exactly 222 nets. Twenty-five LIFE cells form a 5x5 array; every
// cell drives each of its in-grid neighbours over a dedicated
// two-point net (144 nets). A clock generator feeds a sequencer
// (1 net) whose phase output clocks all cells (1 multipoint net),
// every cell state is exported to a system output terminal (25 nets),
// and 51 of the 56 unused border neighbour inputs are fed from system
// input terminals (51 nets).
func Life27() *netlist.Design {
	lib := library.Builtin()
	d := netlist.NewDesign("life27")
	cellSpec := lifeCellSpec()

	cellName := func(r, c int) string { return fmt.Sprintf("cell_%d_%d", r, c) }
	for r := 0; r < lifeRows; r++ {
		for c := 0; c < lifeCols; c++ {
			_, err := d.AddModule(cellName(r, c), cellSpec.Name, cellSpec.W, cellSpec.H, cellSpec.Terms)
			must(err)
		}
	}
	mustModule(d, lib, "clkgen", "CLKGEN")
	mustModule(d, lib, "seq", "SEQ")

	// 144 dedicated neighbour nets (in-grid pairs only).
	for r := 0; r < lifeRows; r++ {
		for c := 0; c < lifeCols; c++ {
			for _, dir := range lifeDirs {
				nr, nc := r+dir.dr, c+dir.dc
				if nr < 0 || nr >= lifeRows || nc < 0 || nc >= lifeCols {
					continue
				}
				net := fmt.Sprintf("nb_%d_%d_%s", r, c, dir.out)
				must(d.Connect(net, cellName(r, c), dir.out))
				must(d.Connect(net, cellName(nr, nc), dir.in))
			}
		}
	}

	// Clock spine: clkgen -> seq, seq phase -> every cell.
	must(d.Connect("mclk", "clkgen", "CLK"))
	must(d.Connect("mclk", "seq", "CLK"))
	must(d.Connect("phase", "seq", "PH0"))
	for r := 0; r < lifeRows; r++ {
		for c := 0; c < lifeCols; c++ {
			must(d.Connect("phase", cellName(r, c), "CLK"))
		}
	}

	// Twenty-five observation nets to system output terminals.
	obs := 0
	for r := 0; r < lifeRows; r++ {
		for c := 0; c < lifeCols; c++ {
			term := fmt.Sprintf("OBS%d", obs)
			_, err := d.AddSysTerm(term, netlist.Out)
			must(err)
			net := fmt.Sprintf("obs%d", obs)
			must(d.ConnectSys(net, term))
			must(d.Connect(net, cellName(r, c), "STATE"))
			obs++
		}
	}

	// Border inputs: the grid-edge cells have neighbour inputs with no
	// in-grid driver; feed 51 of them from system input terminals.
	fed := 0
	for r := 0; r < lifeRows && fed < lifeBorderInputs; r++ {
		for c := 0; c < lifeCols && fed < lifeBorderInputs; c++ {
			for _, dir := range lifeDirs {
				if fed >= lifeBorderInputs {
					break
				}
				nr, nc := r+dir.dr, c+dir.dc
				if nr >= 0 && nr < lifeRows && nc >= 0 && nc < lifeCols {
					continue // has an in-grid driver
				}
				// The input of cell (r,c) that would have come from the
				// missing neighbour in direction dir is dir.in of the
				// *reverse* direction; equivalently, cell (r,c) lacks a
				// driver on the input fed by the neighbour at (nr,nc).
				term := fmt.Sprintf("BIN%d", fed)
				_, err := d.AddSysTerm(term, netlist.In)
				must(err)
				net := fmt.Sprintf("bin%d", fed)
				must(d.ConnectSys(net, term))
				must(d.Connect(net, cellName(r, c), reverseIn(dir.out)))
				fed++
			}
		}
	}
	return d
}

// reverseIn maps an output direction name to the input terminal of the
// cell that this output would feed: a cell missing the neighbour in
// direction X leaves its own input (fed by that neighbour's opposite
// output) undriven.
func reverseIn(out string) string {
	switch out {
	case "ON":
		return "IN"
	case "OS":
		return "IS"
	case "OW":
		return "IW"
	case "OE":
		return "IE"
	case "ONW":
		return "INW"
	case "ONE":
		return "INE"
	case "OSW":
		return "ISW"
	case "OSE":
		return "ISE"
	}
	return out
}

// HandPos pins a module for a manual placement.
type HandPos struct {
	Pos    geom.Point
	Orient geom.Orient
}

// LifeHandPlacement returns the manual placement of the LIFE network
// used for figure 6.6: the cells in a regular 5x5 array with routing
// channels between them, the clock generator and sequencer to the left.
// Keys are module instance names.
func LifeHandPlacement() map[string]HandPos {
	spec := lifeCellSpec()
	const gap = 8 // routing channel width between cells
	out := map[string]HandPos{}
	for r := 0; r < lifeRows; r++ {
		for c := 0; c < lifeCols; c++ {
			x := (spec.W + gap) * c
			y := (spec.H + gap) * (lifeRows - 1 - r)
			out[fmt.Sprintf("cell_%d_%d", r, c)] = HandPos{Pos: geom.Pt(x, y)}
		}
	}
	mid := (spec.H + gap) * lifeRows / 2
	out["clkgen"] = HandPos{Pos: geom.Pt(-2*gap-10, mid+6)}
	out["seq"] = HandPos{Pos: geom.Pt(-2*gap-10, mid-6)}
	return out
}

// Datapath16HandTweak returns the manual preplacement of figure 6.5: the
// network of figure 6.2 with one module (the controller) moved from the
// centre to the top left.
func Datapath16HandTweak() map[string]HandPos {
	return map[string]HandPos{
		"ctrl": {Pos: geom.Pt(0, 40)},
	}
}

// Random builds a pseudo-random connected network with n modules drawn
// from the builtin gate library and roughly 1.5*n nets of degree 2..4,
// plus a few system terminals. The same seed always yields the same
// network (math/rand with a fixed source; no global state).
func Random(n int, seed int64) *netlist.Design {
	rng := rand.New(rand.NewSource(seed))
	lib := library.Builtin()
	names := []string{"INV", "BUF", "AND2", "OR2", "NAND2", "XOR2", "DFF", "MUX2", "REG", "ADD"}
	d := netlist.NewDesign(fmt.Sprintf("random%d_%d", n, seed))

	type pin struct {
		mod  string
		term string
	}
	var drivers, sinks []pin
	for i := 0; i < n; i++ {
		tpl := names[rng.Intn(len(names))]
		name := fmt.Sprintf("r%d", i)
		m := mustModule(d, lib, name, tpl)
		for _, t := range m.Terms {
			if t.Type.CanDrive() {
				drivers = append(drivers, pin{name, t.Name})
			} else {
				sinks = append(sinks, pin{name, t.Name})
			}
		}
	}
	rng.Shuffle(len(sinks), func(i, j int) { sinks[i], sinks[j] = sinks[j], sinks[i] })
	rng.Shuffle(len(drivers), func(i, j int) { drivers[i], drivers[j] = drivers[j], drivers[i] })

	// Connect a spanning chain first so the network is connected, then
	// add random fanout until sinks or drivers run out.
	netID := 0
	si := 0
	for di := 0; di < len(drivers) && si < len(sinks); di++ {
		drv := drivers[di]
		deg := 1 + rng.Intn(3) // 1..3 sinks per net
		net := fmt.Sprintf("w%d", netID)
		netID++
		if err := d.Connect(net, drv.mod, drv.term); err != nil {
			continue
		}
		for k := 0; k < deg && si < len(sinks); k++ {
			s := sinks[si]
			si++
			if s.mod == drv.mod {
				k-- // avoid trivial self-loop pins; try the next sink
				continue
			}
			must(d.Connect(net, s.mod, s.term))
		}
	}

	// A couple of system terminals on fresh nets.
	for i := 0; i < 2 && si < len(sinks); i++ {
		term := fmt.Sprintf("SIN%d", i)
		_, err := d.AddSysTerm(term, netlist.In)
		must(err)
		net := fmt.Sprintf("sys%d", i)
		must(d.ConnectSys(net, term))
		must(d.Connect(net, sinks[si].mod, sinks[si].term))
		si++
	}
	return d
}

// CPU builds a small accumulator machine used as an additional
// integration workload beyond the paper's own networks: a fetch /
// decode / execute structure with 21 modules. It exercises deeper
// combinational chains and a register-heavy control section.
func CPU() *netlist.Design {
	lib := library.Builtin()
	d := netlist.NewDesign("cpu21")

	// Fetch: program counter chain.
	mustModule(d, lib, "pc", "CNT")
	mustModule(d, lib, "pcbuf", "BUF")
	mustModule(d, lib, "imem", "ROM")
	// Decode.
	mustModule(d, lib, "ir", "REG")
	mustModule(d, lib, "dec0", "AND2")
	mustModule(d, lib, "dec1", "INV")
	mustModule(d, lib, "dec2", "OR2")
	mustModule(d, lib, "seq", "SEQ")
	// Execute: accumulator datapath.
	mustModule(d, lib, "amux", "MUX2")
	mustModule(d, lib, "acc", "REG")
	mustModule(d, lib, "alu", "ALU")
	mustModule(d, lib, "badd", "ADD")
	mustModule(d, lib, "zflag", "DFF")
	mustModule(d, lib, "cflag", "DFF")
	// Memory interface.
	mustModule(d, lib, "dmem", "RAM")
	mustModule(d, lib, "wrbuf", "TBUF")
	mustModule(d, lib, "cmp", "CMP")
	// Clocking and I/O conditioning.
	mustModule(d, lib, "ckg", "CLKGEN")
	mustModule(d, lib, "ckbuf", "BUF")
	mustModule(d, lib, "ibuf", "BUF")
	mustModule(d, lib, "obuf", "BUF")

	for _, io := range []struct {
		name string
		typ  netlist.TermType
	}{{"RUN", netlist.In}, {"DATAIN", netlist.In}, {"DATAOUT", netlist.Out}, {"ZERO", netlist.Out}} {
		_, err := d.AddSysTerm(io.name, io.typ)
		must(err)
	}

	c := func(net string, pins ...[2]string) {
		for _, p := range pins {
			var err error
			if p[0] == "root" {
				err = d.ConnectSys(net, p[1])
			} else {
				err = d.Connect(net, p[0], p[1])
			}
			must(err)
		}
	}
	// Clock spine.
	c("run", [2]string{"root", "RUN"}, [2]string{"ckg", "EN"})
	c("mclk", [2]string{"ckg", "CLK"}, [2]string{"ckbuf", "A"})
	c("clk", [2]string{"ckbuf", "Y"}, [2]string{"pc", "CLK"}, [2]string{"ir", "CLK"},
		[2]string{"acc", "CLK"}, [2]string{"zflag", "CLK"}, [2]string{"cflag", "CLK"},
		[2]string{"seq", "CLK"}, [2]string{"dmem", "CLK"})
	// Fetch.
	c("pcv", [2]string{"pc", "Q"}, [2]string{"pcbuf", "A"})
	c("iaddr", [2]string{"pcbuf", "Y"}, [2]string{"imem", "ADDR"})
	c("inst", [2]string{"imem", "DATA"}, [2]string{"ir", "D"})
	// Decode.
	c("irq", [2]string{"ir", "Q"}, [2]string{"dec0", "A"}, [2]string{"dec1", "A"},
		[2]string{"alu", "OP"})
	c("ph0", [2]string{"seq", "PH0"}, [2]string{"dec0", "B"}, [2]string{"ir", "EN"})
	c("notop", [2]string{"dec1", "Y"}, [2]string{"dec2", "A"})
	c("go", [2]string{"seq", "PH1"}, [2]string{"dec2", "B"}, [2]string{"pc", "EN"})
	c("ldacc", [2]string{"dec2", "Y"}, [2]string{"acc", "EN"})
	c("wr", [2]string{"dec0", "Y"}, [2]string{"wrbuf", "EN"}, [2]string{"dmem", "WE"})
	// Execute.
	c("din", [2]string{"root", "DATAIN"}, [2]string{"ibuf", "A"})
	c("opnd", [2]string{"ibuf", "Y"}, [2]string{"amux", "A"}, [2]string{"badd", "A"})
	c("mdata", [2]string{"dmem", "DOUT"}, [2]string{"amux", "B"}, [2]string{"cmp", "B"})
	c("aluin", [2]string{"amux", "Y"}, [2]string{"alu", "B"})
	c("accq", [2]string{"acc", "Q"}, [2]string{"alu", "A"}, [2]string{"badd", "B"},
		[2]string{"wrbuf", "A"}, [2]string{"obuf", "A"}, [2]string{"cmp", "A"})
	c("aluf", [2]string{"alu", "F"}, [2]string{"acc", "D"})
	c("aluz", [2]string{"alu", "Z"}, [2]string{"zflag", "D"})
	c("carry", [2]string{"badd", "CO"}, [2]string{"cflag", "D"})
	c("daddr", [2]string{"badd", "S"}, [2]string{"dmem", "ADDR"})
	c("wdata", [2]string{"wrbuf", "Y"}, [2]string{"dmem", "DIN"})
	c("sel", [2]string{"cmp", "EQ"}, [2]string{"amux", "S"})
	c("rst", [2]string{"cmp", "GT"}, [2]string{"pc", "RST"})
	c("seqgo", [2]string{"zflag", "Q"}, [2]string{"seq", "GO"})
	c("dout", [2]string{"obuf", "Y"}, [2]string{"root", "DATAOUT"})
	c("zero", [2]string{"zflag", "QN"}, [2]string{"root", "ZERO"})
	return d
}
