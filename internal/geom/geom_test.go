package geom

import (
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(-1, 2)
	if got := p.Add(q); got != Pt(2, 6) {
		t.Errorf("Add = %v, want (2,6)", got)
	}
	if got := p.Sub(q); got != Pt(4, 2) {
		t.Errorf("Sub = %v, want (4,2)", got)
	}
	if got := p.Manhattan(q); got != 6 {
		t.Errorf("Manhattan = %d, want 6", got)
	}
	if got := p.SqDist(q); got != 20 {
		t.Errorf("SqDist = %d, want 20", got)
	}
}

func TestMinMaxAbs(t *testing.T) {
	if Min(2, 3) != 2 || Min(3, 2) != 2 {
		t.Error("Min broken")
	}
	if Max(2, 3) != 3 || Max(3, 2) != 3 {
		t.Error("Max broken")
	}
	if Abs(-5) != 5 || Abs(5) != 5 || Abs(0) != 0 {
		t.Error("Abs broken")
	}
}

func TestRectNormalization(t *testing.T) {
	r := R(5, 7, 1, 2)
	if r.Min != Pt(1, 2) || r.Max != Pt(5, 7) {
		t.Errorf("R did not normalize: %v", r)
	}
}

func TestRectBasics(t *testing.T) {
	r := R(0, 0, 4, 3)
	if r.Dx() != 4 || r.Dy() != 3 || r.Area() != 12 {
		t.Errorf("Dx/Dy/Area wrong: %d %d %d", r.Dx(), r.Dy(), r.Area())
	}
	if r.Empty() {
		t.Error("non-empty rect reported empty")
	}
	if !R(1, 1, 1, 5).Empty() {
		t.Error("zero-width rect should be empty")
	}
	if R(1, 1, 1, 5).Area() != 0 {
		t.Error("empty rect area should be 0")
	}
}

func TestRectContains(t *testing.T) {
	r := R(0, 0, 4, 3)
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(0, 0), true},
		{Pt(3, 2), true},
		{Pt(4, 2), false}, // Max exclusive
		{Pt(3, 3), false},
		{Pt(-1, 0), false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectOverlaps(t *testing.T) {
	a := R(0, 0, 4, 4)
	if !a.Overlaps(R(3, 3, 6, 6)) {
		t.Error("corner-overlapping rects should overlap")
	}
	if a.Overlaps(R(4, 0, 6, 4)) {
		t.Error("edge-adjacent rects must not overlap (Max exclusive)")
	}
	if a.Overlaps(R(10, 10, 12, 12)) {
		t.Error("distant rects must not overlap")
	}
	if a.Overlaps(Rect{}) {
		t.Error("empty rect overlaps nothing")
	}
}

func TestRectUnionIntersect(t *testing.T) {
	a := R(0, 0, 2, 2)
	b := R(1, 1, 5, 3)
	u := a.Union(b)
	if u != R(0, 0, 5, 3) {
		t.Errorf("Union = %v", u)
	}
	i := a.Intersect(b)
	if i != R(1, 1, 2, 2) {
		t.Errorf("Intersect = %v", i)
	}
	if got := a.Intersect(R(10, 10, 11, 11)); !got.Empty() {
		t.Errorf("disjoint Intersect should be empty, got %v", got)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Errorf("Union with empty should be identity, got %v", got)
	}
}

func TestRectTranslateInsetCenter(t *testing.T) {
	r := R(0, 0, 4, 4)
	if got := r.Translate(Pt(2, 3)); got != R(2, 3, 6, 7) {
		t.Errorf("Translate = %v", got)
	}
	if got := r.Inset(1); got != R(1, 1, 3, 3) {
		t.Errorf("Inset = %v", got)
	}
	if got := r.Inset(-1); got != R(-1, -1, 5, 5) {
		t.Errorf("Inset(-1) = %v", got)
	}
	if got := r.Center(); got != Pt(2, 2) {
		t.Errorf("Center = %v", got)
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := Iv(7, 3)
	if iv.Lo != 3 || iv.Hi != 7 {
		t.Errorf("Iv did not normalize: %v", iv)
	}
	if iv.Len() != 5 {
		t.Errorf("Len = %d, want 5", iv.Len())
	}
	if !iv.Contains(3) || !iv.Contains(7) || iv.Contains(8) {
		t.Error("Contains wrong at boundaries")
	}
}

func TestIntervalOverlapIntersect(t *testing.T) {
	a := Iv(0, 5)
	if !a.Overlaps(Iv(5, 9)) {
		t.Error("closed intervals sharing endpoint must overlap")
	}
	if a.Overlaps(Iv(6, 9)) {
		t.Error("disjoint intervals must not overlap")
	}
	got := a.Intersect(Iv(3, 9))
	if got != (Interval{3, 5}) {
		t.Errorf("Intersect = %v", got)
	}
	if a.Intersect(Iv(7, 9)).Valid() {
		t.Error("disjoint Intersect should be invalid")
	}
}

func TestIntervalSubtract(t *testing.T) {
	a := Iv(0, 10)
	cases := []struct {
		cut  Interval
		want []Interval
	}{
		{Iv(3, 5), []Interval{{0, 2}, {6, 10}}},
		{Iv(0, 4), []Interval{{5, 10}}},
		{Iv(6, 10), []Interval{{0, 5}}},
		{Iv(0, 10), nil},
		{Iv(-5, 20), nil},
		{Iv(12, 15), []Interval{{0, 10}}},
	}
	for _, c := range cases {
		got := a.Subtract(c.cut)
		if len(got) != len(c.want) {
			t.Errorf("Subtract(%v) = %v, want %v", c.cut, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Subtract(%v) = %v, want %v", c.cut, got, c.want)
			}
		}
	}
}

func TestIntervalSubtractProperty(t *testing.T) {
	// The pieces left after subtraction cover exactly the cells of the
	// original interval not covered by the cut.
	f := func(aLo, aLen, bLo, bLen uint8) bool {
		a := Iv(int(aLo), int(aLo)+int(aLen)%40)
		b := Iv(int(bLo), int(bLo)+int(bLen)%40)
		pieces := a.Subtract(b)
		for v := a.Lo - 2; v <= a.Hi+2; v++ {
			want := a.Contains(v) && !b.Contains(v)
			got := false
			for _, p := range pieces {
				if p.Contains(v) {
					got = true
				}
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDirOpposite(t *testing.T) {
	for _, d := range Dirs {
		if d.Opposite().Opposite() != d {
			t.Errorf("Opposite not an involution for %v", d)
		}
		if d.Opposite() == d {
			t.Errorf("Opposite(%v) == itself", d)
		}
	}
	if Left.Opposite() != Right || Up.Opposite() != Down {
		t.Error("Opposite wrong")
	}
}

func TestDirDelta(t *testing.T) {
	if Left.Delta() != Pt(-1, 0) || Right.Delta() != Pt(1, 0) ||
		Up.Delta() != Pt(0, 1) || Down.Delta() != Pt(0, -1) {
		t.Error("Delta wrong")
	}
	for _, d := range Dirs {
		sum := d.Delta().Add(d.Opposite().Delta())
		if sum != Pt(0, 0) {
			t.Errorf("Delta(%v)+Delta(opposite) != 0", d)
		}
	}
}

func TestDirHorizontal(t *testing.T) {
	if !Left.Horizontal() || !Right.Horizontal() || Up.Horizontal() || Down.Horizontal() {
		t.Error("Horizontal wrong")
	}
}

func TestOrientRotateSize(t *testing.T) {
	w, h := 6, 2
	if gw, gh := R0.RotateSize(w, h); gw != 6 || gh != 2 {
		t.Errorf("R0 size = %d,%d", gw, gh)
	}
	if gw, gh := R90.RotateSize(w, h); gw != 2 || gh != 6 {
		t.Errorf("R90 size = %d,%d", gw, gh)
	}
	if gw, gh := R180.RotateSize(w, h); gw != 6 || gh != 2 {
		t.Errorf("R180 size = %d,%d", gw, gh)
	}
	if gw, gh := R270.RotateSize(w, h); gw != 2 || gh != 6 {
		t.Errorf("R270 size = %d,%d", gw, gh)
	}
}

func TestOrientRotatePointCorners(t *testing.T) {
	// Rotating the module's own corners must land on corners of the
	// rotated bounding box.
	w, h := 5, 3
	corners := []Point{Pt(0, 0), Pt(w, 0), Pt(0, h), Pt(w, h)}
	for _, o := range []Orient{R0, R90, R180, R270} {
		rw, rh := o.RotateSize(w, h)
		for _, c := range corners {
			p := o.RotatePoint(c, w, h)
			if (p.X != 0 && p.X != rw) || (p.Y != 0 && p.Y != rh) {
				t.Errorf("%v corner %v -> %v not a corner of %dx%d", o, c, p, rw, rh)
			}
		}
	}
}

func TestOrientRotatePointInverse(t *testing.T) {
	// R90 four times is identity.
	w, h := 5, 3
	p := Pt(2, 1)
	q := p
	cw, ch := w, h
	for i := 0; i < 4; i++ {
		q = R90.RotatePoint(q, cw, ch)
		cw, ch = ch, cw
	}
	if q != p {
		t.Errorf("four R90 rotations: %v -> %v", p, q)
	}
}

func TestOrientRotateDir(t *testing.T) {
	if R90.RotateDir(Left) != Down {
		t.Error("R90 left should map to down")
	}
	if R90.RotateDir(Right) != Up {
		t.Error("R90 right should map to up")
	}
	if R180.RotateDir(Left) != Right {
		t.Error("R180 left should map to right")
	}
	for _, d := range Dirs {
		if R0.RotateDir(d) != d {
			t.Error("R0 must be identity on dirs")
		}
	}
}

func TestOrientTaking(t *testing.T) {
	for _, from := range Dirs {
		for _, to := range Dirs {
			o := OrientTaking(from, to)
			if got := o.RotateDir(from); got != to {
				t.Errorf("OrientTaking(%v,%v)=%v maps %v to %v", from, to, o, from, got)
			}
		}
	}
}

func TestOrientConsistencyPointDir(t *testing.T) {
	// A terminal sitting on a given side of the module must, after
	// rotation, sit on the rotated side. Checks RotatePoint and
	// RotateDir agree.
	w, h := 7, 4
	type tc struct {
		p    Point
		side Dir
	}
	cases := []tc{
		{Pt(0, 2), Left},
		{Pt(w, 1), Right},
		{Pt(3, h), Up},
		{Pt(3, 0), Down},
	}
	sideOf := func(p Point, w, h int) Dir {
		switch {
		case p.X == 0:
			return Left
		case p.X == w:
			return Right
		case p.Y == h:
			return Up
		default:
			return Down
		}
	}
	for _, o := range []Orient{R0, R90, R180, R270} {
		rw, rh := o.RotateSize(w, h)
		for _, c := range cases {
			p := o.RotatePoint(c.p, w, h)
			want := o.RotateDir(c.side)
			if got := sideOf(p, rw, rh); got != want {
				t.Errorf("%v: terminal %v on %v -> %v on %v, want %v",
					o, c.p, c.side, p, got, want)
			}
		}
	}
}

func TestOrientAdd(t *testing.T) {
	if R90.Add(R90) != R180 || R270.Add(R90) != R0 || R180.Add(R180) != R0 {
		t.Error("Orient.Add wrong")
	}
}

func TestStringers(t *testing.T) {
	if Pt(1, 2).String() != "(1,2)" {
		t.Error("Point.String")
	}
	if Iv(1, 2).String() != "[1..2]" {
		t.Error("Interval.String")
	}
	if Left.String() != "left" || Dir(9).String() == "" {
		t.Error("Dir.String")
	}
	if R90.String() != "R90" || Orient(9).String() == "" {
		t.Error("Orient.String")
	}
	if R(0, 0, 1, 1).String() == "" {
		t.Error("Rect.String")
	}
}
