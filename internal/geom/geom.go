// Package geom provides the integer geometry primitives shared by the
// placement and routing phases of the schematic diagram generator: points,
// rectangles, closed intervals, axis directions, module sides, and the
// right-angle orientations used when rotating module symbols.
//
// All coordinates are integers. The paper (Koster & Stok, EUT 89-E-219)
// works on an integer track grid; one unit is one routing track.
package geom

import "fmt"

// Point is an integer grid coordinate. Y grows upward, matching the
// paper's "lower left coordinate" convention.
type Point struct {
	X, Y int
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int) Point { return Point{x, y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) int { return Abs(p.X-q.X) + Abs(p.Y-q.Y) }

// SqDist returns the squared Euclidean distance between p and q.
// The placement phase compares squared distances (PLACE_BOX in §4.6.5),
// avoiding floating point entirely.
func (p Point) SqDist(q Point) int {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Abs returns the absolute value of x.
func Abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Min returns the smaller of a and b.
func Min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Rect is an axis-aligned rectangle with inclusive Min and exclusive Max
// corner semantics for area purposes, i.e. it covers grid cells
// Min.X <= x < Max.X, Min.Y <= y < Max.Y. A module of size (w,h) placed
// at lower-left (x,y) occupies Rect{Pt(x,y), Pt(x+w, y+h)}.
type Rect struct {
	Min, Max Point
}

// R is shorthand for a rectangle from (x0,y0) to (x1,y1). It normalizes
// the corners so Min is component-wise <= Max.
func R(x0, y0, x1, y1 int) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Point{x0, y0}, Point{x1, y1}}
}

// Dx returns the width of r.
func (r Rect) Dx() int { return r.Max.X - r.Min.X }

// Dy returns the height of r.
func (r Rect) Dy() int { return r.Max.Y - r.Min.Y }

// Empty reports whether r covers no cells.
func (r Rect) Empty() bool { return r.Min.X >= r.Max.X || r.Min.Y >= r.Max.Y }

// Area returns the number of cells covered by r.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return r.Dx() * r.Dy()
}

// Contains reports whether p lies inside r (Min inclusive, Max exclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// Overlaps reports whether r and s share at least one cell.
func (r Rect) Overlaps(s Rect) bool {
	return !r.Empty() && !s.Empty() &&
		r.Min.X < s.Max.X && s.Min.X < r.Max.X &&
		r.Min.Y < s.Max.Y && s.Min.Y < r.Max.Y
}

// Union returns the smallest rectangle containing both r and s. Empty
// rectangles are treated as the identity.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Point{Min(r.Min.X, s.Min.X), Min(r.Min.Y, s.Min.Y)},
		Point{Max(r.Max.X, s.Max.X), Max(r.Max.Y, s.Max.Y)},
	}
}

// Intersect returns the largest rectangle contained in both r and s.
// If they do not overlap the result is empty.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Point{Max(r.Min.X, s.Min.X), Max(r.Min.Y, s.Min.Y)},
		Point{Min(r.Max.X, s.Max.X), Min(r.Max.Y, s.Max.Y)},
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Translate returns r shifted by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{r.Min.Add(d), r.Max.Add(d)}
}

// Inset returns r shrunk by n cells on every side (grown when n is
// negative). The result may be empty.
func (r Rect) Inset(n int) Rect {
	return Rect{Point{r.Min.X + n, r.Min.Y + n}, Point{r.Max.X - n, r.Max.Y - n}}
}

// Center returns the integer center of r (rounded toward Min).
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%v-%v]", r.Min, r.Max)
}

// Interval is a closed integer interval [Lo, Hi]. Routing segments use
// closed intervals: a segment at index i covering x..y touches every
// track cell between x and y inclusive (the paper's (i, x, y) triples).
type Interval struct {
	Lo, Hi int
}

// Iv is shorthand for Interval{lo, hi}, normalized so Lo <= Hi.
func Iv(lo, hi int) Interval {
	if lo > hi {
		lo, hi = hi, lo
	}
	return Interval{lo, hi}
}

// Len returns the number of cells covered by the closed interval.
func (iv Interval) Len() int { return iv.Hi - iv.Lo + 1 }

// Valid reports whether Lo <= Hi.
func (iv Interval) Valid() bool { return iv.Lo <= iv.Hi }

// Contains reports whether v lies within the closed interval.
func (iv Interval) Contains(v int) bool { return v >= iv.Lo && v <= iv.Hi }

// Overlaps reports whether two closed intervals share a point.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Lo <= o.Hi && o.Lo <= iv.Hi
}

// Intersect returns the common part of two closed intervals. The result
// is invalid (Lo > Hi) when they do not overlap.
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{Max(iv.Lo, o.Lo), Min(iv.Hi, o.Hi)}
}

// Subtract removes o from iv and returns the up-to-two remaining pieces.
func (iv Interval) Subtract(o Interval) []Interval {
	if !iv.Overlaps(o) {
		return []Interval{iv}
	}
	var out []Interval
	if o.Lo > iv.Lo {
		out = append(out, Interval{iv.Lo, o.Lo - 1})
	}
	if o.Hi < iv.Hi {
		out = append(out, Interval{o.Hi + 1, iv.Hi})
	}
	return out
}

// String implements fmt.Stringer.
func (iv Interval) String() string { return fmt.Sprintf("[%d..%d]", iv.Lo, iv.Hi) }

// Dir is one of the four axis directions used for expansion and for
// terminal sides.
type Dir int

// The four axis directions. The zero value is Left so that the paper's
// {left, right, up, down} enumeration maps onto 0..3.
const (
	Left Dir = iota
	Right
	Up
	Down
)

// Dirs lists all four directions, useful for range loops.
var Dirs = [4]Dir{Left, Right, Up, Down}

// Opposite returns the direction pointing the other way.
func (d Dir) Opposite() Dir {
	switch d {
	case Left:
		return Right
	case Right:
		return Left
	case Up:
		return Down
	default:
		return Up
	}
}

// Horizontal reports whether d is Left or Right.
func (d Dir) Horizontal() bool { return d == Left || d == Right }

// Delta returns the unit step vector of d.
func (d Dir) Delta() Point {
	switch d {
	case Left:
		return Point{-1, 0}
	case Right:
		return Point{1, 0}
	case Up:
		return Point{0, 1}
	default:
		return Point{0, -1}
	}
}

// String implements fmt.Stringer.
func (d Dir) String() string {
	switch d {
	case Left:
		return "left"
	case Right:
		return "right"
	case Up:
		return "up"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("Dir(%d)", int(d))
	}
}

// Orient is a right-angle orientation of a module symbol: the number of
// counter-clockwise quarter turns applied to it. The module placement
// phase rotates modules so that the terminal connected to the previous
// string element faces left (§4.6.4).
type Orient int

// The four orientations.
const (
	R0   Orient = iota // as drawn in the library
	R90                // 90° counter-clockwise
	R180               // 180°
	R270               // 270° counter-clockwise (= 90° clockwise)
)

// String implements fmt.Stringer.
func (o Orient) String() string {
	switch o {
	case R0:
		return "R0"
	case R90:
		return "R90"
	case R180:
		return "R180"
	case R270:
		return "R270"
	default:
		return fmt.Sprintf("Orient(%d)", int(o))
	}
}

// Add composes two rotations.
func (o Orient) Add(p Orient) Orient { return Orient((int(o) + int(p)) % 4) }

// RotateSize returns the size of a (w,h) module after rotation.
func (o Orient) RotateSize(w, h int) (int, int) {
	if o == R90 || o == R270 {
		return h, w
	}
	return w, h
}

// RotatePoint maps a point given relative to the lower-left corner of an
// unrotated (w,h) module onto its position relative to the lower-left
// corner of the rotated module.
func (o Orient) RotatePoint(p Point, w, h int) Point {
	switch o {
	case R90: // (x,y) -> (h-y, x)  ... lower-left preserved after CCW turn
		return Point{h - p.Y, p.X}
	case R180:
		return Point{w - p.X, h - p.Y}
	case R270:
		return Point{p.Y, w - p.X}
	default:
		return p
	}
}

// RotateDir maps a side/direction through the rotation.
func (o Orient) RotateDir(d Dir) Dir {
	// One CCW quarter turn: left->down, down->right, right->up, up->left.
	ccw := map[Dir]Dir{Left: Down, Down: Right, Right: Up, Up: Left}
	for i := 0; i < int(o); i++ {
		d = ccw[d]
	}
	return d
}

// OrientTaking returns the orientation that maps side `from` onto side
// `to`. It is used to rotate a module so the side holding a given
// terminal faces a desired direction.
func OrientTaking(from, to Dir) Orient {
	for _, o := range []Orient{R0, R90, R180, R270} {
		if o.RotateDir(from) == to {
			return o
		}
	}
	return R0 // unreachable: the four rotations cover all mappings
}
