package partition

import (
	"testing"
	"testing/quick"

	"netart/internal/geom"
	"netart/internal/netlist"
	"netart/internal/workload"
)

// checkIsPartition verifies the defining property: disjoint and covering.
func checkIsPartition(t *testing.T, d *netlist.Design, parts []*Part, modules []*netlist.Module) {
	t.Helper()
	seen := map[*netlist.Module]int{}
	for pi, p := range parts {
		if len(p.Modules) == 0 {
			t.Errorf("partition %d is empty", pi)
		}
		for _, m := range p.Modules {
			if prev, dup := seen[m]; dup {
				t.Errorf("module %s in partitions %d and %d", m.Name, prev, pi)
			}
			seen[m] = pi
		}
	}
	for _, m := range modules {
		if _, ok := seen[m]; !ok {
			t.Errorf("module %s not in any partition", m.Name)
		}
	}
	if len(seen) != len(modules) {
		t.Errorf("partitions contain %d modules, want %d", len(seen), len(modules))
	}
}

func TestPartitionSizeOne(t *testing.T) {
	// -p 1, the Appendix E default: every module its own partition
	// (figure 6.2's "typical clustering of the modules").
	d := workload.Datapath16()
	parts := Partition(d, Config{MaxSize: 1})
	if len(parts) != 16 {
		t.Fatalf("got %d partitions, want 16", len(parts))
	}
	checkIsPartition(t, d, parts, d.Modules)
	for _, p := range parts {
		if len(p.Modules) != 1 {
			t.Errorf("partition size %d with MaxSize 1", len(p.Modules))
		}
	}
}

func TestPartitionSizeFiveFormsFunctionalGroups(t *testing.T) {
	// -p 5 on the datapath: figure 6.3 shows functional parts of at
	// most five modules.
	d := workload.Datapath16()
	parts := Partition(d, Config{MaxSize: 5})
	checkIsPartition(t, d, parts, d.Modules)
	for _, p := range parts {
		if len(p.Modules) > 5 {
			t.Errorf("partition size %d exceeds 5", len(p.Modules))
		}
	}
	// 16 modules with max 5 needs at least 4 partitions.
	if len(parts) < 4 {
		t.Errorf("only %d partitions", len(parts))
	}
	// At least one lane should end up grouped: some partition holds >= 3
	// modules of the same lane (mux/rega/alu/regb/cmp share an index
	// suffix).
	laneGrouped := false
	for _, p := range parts {
		perLane := map[byte]int{}
		for _, m := range p.Modules {
			suffix := m.Name[len(m.Name)-1]
			if suffix >= '0' && suffix <= '2' && m.Name != "ctrl" {
				perLane[suffix]++
			}
		}
		for _, n := range perLane {
			if n >= 3 {
				laneGrouped = true
			}
		}
	}
	if !laneGrouped {
		t.Error("no partition groups a datapath lane; functional clustering failed")
	}
}

func TestSeedIsMostConnected(t *testing.T) {
	// The controller is the most heavily connected module; with one big
	// partition budget it must be chosen as the first seed.
	d := workload.Datapath16()
	parts := Partition(d, Config{MaxSize: 16})
	if parts[0].Modules[0].Name != "ctrl" {
		t.Errorf("first seed = %s, want ctrl", parts[0].Modules[0].Name)
	}
}

func TestMaxConnectionsLimitsGrowth(t *testing.T) {
	d := workload.Datapath16()
	unbounded := Partition(d, Config{MaxSize: 16})
	bounded := Partition(d, Config{MaxSize: 16, MaxConnections: 1})
	if len(bounded) <= len(unbounded) {
		t.Errorf("connection budget did not fragment partitions: %d vs %d",
			len(bounded), len(unbounded))
	}
	checkIsPartition(t, d, bounded, d.Modules)
}

func TestPartitionSubset(t *testing.T) {
	d := workload.Datapath16()
	sub := d.Modules[:8]
	parts := PartitionSubset(d, sub, Config{MaxSize: 3})
	checkIsPartition(t, d, parts, sub)
	inSub := map[*netlist.Module]bool{}
	for _, m := range sub {
		inSub[m] = true
	}
	for _, p := range parts {
		for _, m := range p.Modules {
			if !inSub[m] {
				t.Errorf("module %s outside subset placed", m.Name)
			}
		}
	}
}

func TestPartitionSubsetDeduplicates(t *testing.T) {
	d := workload.Fig61()
	dup := append(append([]*netlist.Module{}, d.Modules...), d.Modules[0])
	parts := PartitionSubset(d, dup, Config{MaxSize: 2})
	checkIsPartition(t, d, parts, d.Modules)
}

func TestPartitionEmptyDesign(t *testing.T) {
	d := netlist.NewDesign("empty")
	parts := Partition(d, Config{MaxSize: 4})
	if len(parts) != 0 {
		t.Errorf("empty design produced %d partitions", len(parts))
	}
}

func TestPartitionDisconnectedModulesStayApart(t *testing.T) {
	// Two disconnected pairs must not merge into one partition even
	// with a large size budget (the zero-connectivity refinement).
	d := netlist.NewDesign("disc")
	add := func(name string) {
		_, err := d.AddModule(name, "G", 3, 3, []netlist.TermSpec{
			{Name: "A", Type: netlist.In, Pos: geom.Pt(0, 1)},
			{Name: "Y", Type: netlist.Out, Pos: geom.Pt(3, 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	add("a0")
	add("a1")
	add("b0")
	add("b1")
	connect := func(net, m1, t1, m2, t2 string) {
		if err := d.Connect(net, m1, t1); err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(net, m2, t2); err != nil {
			t.Fatal(err)
		}
	}
	connect("na", "a0", "Y", "a1", "A")
	connect("nb", "b0", "Y", "b1", "A")
	parts := Partition(d, Config{MaxSize: 4})
	if len(parts) != 2 {
		t.Fatalf("got %d partitions, want 2 (one per component)", len(parts))
	}
	for _, p := range parts {
		if len(p.Modules) != 2 {
			t.Errorf("partition size %d, want 2", len(p.Modules))
		}
		prefix := p.Modules[0].Name[0]
		for _, m := range p.Modules {
			if m.Name[0] != prefix {
				t.Errorf("components mixed: %s with %c*", m.Name, prefix)
			}
		}
	}
}

func TestPartitionLife(t *testing.T) {
	d := workload.Life27()
	parts := Partition(d, Config{MaxSize: 7})
	checkIsPartition(t, d, parts, d.Modules)
	for _, p := range parts {
		if len(p.Modules) > 7 {
			t.Errorf("partition size %d", len(p.Modules))
		}
	}
}

func TestPartitionPropertyRandom(t *testing.T) {
	// Property: for any random network and any size budget, the result
	// is a true partition obeying the budget.
	f := func(seed int64, sizeRaw uint8) bool {
		n := 12
		size := 1 + int(sizeRaw)%8
		d := workload.Random(n, seed)
		parts := Partition(d, Config{MaxSize: size})
		seen := map[*netlist.Module]bool{}
		for _, p := range parts {
			if len(p.Modules) == 0 || len(p.Modules) > size {
				return false
			}
			for _, m := range p.Modules {
				if seen[m] {
					return false
				}
				seen[m] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPartDeterminism(t *testing.T) {
	d1 := workload.Datapath16()
	d2 := workload.Datapath16()
	p1 := Partition(d1, Config{MaxSize: 5})
	p2 := Partition(d2, Config{MaxSize: 5})
	if len(p1) != len(p2) {
		t.Fatalf("nondeterministic partition count: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if len(p1[i].Modules) != len(p2[i].Modules) {
			t.Fatalf("partition %d size differs", i)
		}
		for j := range p1[i].Modules {
			if p1[i].Modules[j].Name != p2[i].Modules[j].Name {
				t.Fatalf("partition %d module %d differs: %s vs %s",
					i, j, p1[i].Modules[j].Name, p2[i].Modules[j].Name)
			}
		}
	}
}

func TestPartHelpers(t *testing.T) {
	d := workload.Fig61()
	parts := Partition(d, Config{MaxSize: 6})
	p := parts[0]
	if !p.Contains(p.Modules[0]) {
		t.Error("Contains false for member")
	}
	other := netlist.NewDesign("o")
	m, _ := other.AddModule("x", "", 2, 2, nil)
	if p.Contains(m) {
		t.Error("Contains true for non-member")
	}
	if len(p.Set()) != len(p.Modules) {
		t.Error("Set size mismatch")
	}
}

func TestNetsBetweenParts(t *testing.T) {
	d := workload.Datapath16()
	parts := Partition(d, Config{MaxSize: 5})
	// Between any two partitions the count is symmetric.
	for i := range parts {
		for j := range parts {
			a := NetsBetweenParts(d, parts[i], parts[j])
			b := NetsBetweenParts(d, parts[j], parts[i])
			if a != b {
				t.Errorf("asymmetric NetsBetweenParts: %d vs %d", a, b)
			}
		}
	}
}
