// Package partition implements the first placement step of Koster & Stok
// (§4.6.3): decomposing the set of modules into functional partitions by
// repeatedly selecting a seed module and growing a cluster around it
// until the partition size or external connection limits are exceeded.
package partition

import (
	"math"

	"netart/internal/netlist"
)

// Config bounds the clustering, mirroring the PABLO options of
// Appendix E.
type Config struct {
	// MaxSize is the maximum number of modules per partition (-p).
	// Values < 1 are treated as 1, the Appendix E default, which yields
	// one partition per module (figure 6.2).
	MaxSize int
	// MaxConnections limits the number of distinct nets leaving a
	// partition while it grows (-c). Zero or negative means unlimited
	// (the Appendix E default, "infimum").
	MaxConnections int
}

func (c Config) maxSize() int {
	if c.MaxSize < 1 {
		return 1
	}
	return c.MaxSize
}

func (c Config) maxConn() int {
	if c.MaxConnections <= 0 {
		return math.MaxInt
	}
	return c.MaxConnections
}

// Part is one functional partition: an ordered set of modules. Order is
// the order of inclusion, which later steps use for determinism.
type Part struct {
	Modules []*netlist.Module
}

// Contains reports whether m belongs to the partition.
func (p *Part) Contains(m *netlist.Module) bool {
	for _, x := range p.Modules {
		if x == m {
			return true
		}
	}
	return false
}

// Set returns the partition's modules as a set.
func (p *Part) Set() map[*netlist.Module]bool {
	s := make(map[*netlist.Module]bool, len(p.Modules))
	for _, m := range p.Modules {
		s[m] = true
	}
	return s
}

// Partition decomposes all modules of d into partitions (the paper's
// PARTITIONING procedure). The result is a true partition of the module
// set: disjoint and covering.
func Partition(d *netlist.Design, cfg Config) []*Part {
	return PartitionSubset(d, d.Modules, cfg)
}

// PartitionSubset partitions only the given modules, used when a
// preplaced part of the design (PABLO -g) is excluded from automatic
// placement. The subset order determines tie-breaking.
func PartitionSubset(d *netlist.Design, modules []*netlist.Module, cfg Config) []*Part {
	free := make(map[*netlist.Module]bool, len(modules))
	order := make([]*netlist.Module, 0, len(modules))
	for _, m := range modules {
		if !free[m] {
			free[m] = true
			order = append(order, m)
		}
	}
	placed := map[*netlist.Module]bool{} // modules already in some partition
	var parts []*Part
	for len(free) > 0 {
		seed := takeSeed(order, free, placed)
		delete(free, seed)
		part := formPartition(d, order, free, placed, seed, cfg)
		for _, m := range part.Modules {
			placed[m] = true
		}
		parts = append(parts, part)
	}
	return parts
}

// takeSeed implements TAKE_A_SEED: among the free modules, pick the one
// most heavily connected (by distinct nets) to the other free modules;
// break ties by the fewest connections to already partitioned modules;
// remaining ties resolve to the earliest module in input order.
func takeSeed(order []*netlist.Module, free, placed map[*netlist.Module]bool) *netlist.Module {
	var best *netlist.Module
	bestFree, bestPlaced := -1, 0
	for _, m := range order {
		if !free[m] {
			continue
		}
		toFree := netsExcluding(m, free, m)
		toPlaced := netlist.NetsBetween(m, placed)
		if best == nil || toFree > bestFree ||
			(toFree == bestFree && toPlaced < bestPlaced) {
			best, bestFree, bestPlaced = m, toFree, toPlaced
		}
	}
	return best
}

// netsExcluding counts distinct nets from m to modules of set other than
// skip.
func netsExcluding(m *netlist.Module, set map[*netlist.Module]bool, skip *netlist.Module) int {
	seen := map[*netlist.Net]bool{}
	count := 0
	for _, t := range m.Terms {
		n := t.Net
		if n == nil || seen[n] {
			continue
		}
		seen[n] = true
		for _, u := range n.Terms {
			if u.Module != nil && u.Module != m && u.Module != skip && set[u.Module] {
				count++
				break
			}
		}
	}
	return count
}

// formPartition implements FORM_PARTITION: grow a cluster from the seed.
// The next module is the free one with the largest number of distinct
// nets to the current partition, ties broken by the fewest nets to
// modules outside it. Growth stops when the module budget or the
// external connection budget is exhausted, or no free modules remain.
func formPartition(d *netlist.Design, order []*netlist.Module, free, placed map[*netlist.Module]bool,
	seed *netlist.Module, cfg Config) *Part {
	part := &Part{Modules: []*netlist.Module{seed}}
	inPart := map[*netlist.Module]bool{seed: true}
	maxSize, maxConn := cfg.maxSize(), cfg.maxConn()

	for len(free) > 0 && len(part.Modules) < maxSize &&
		externalConnections(d, inPart) < maxConn {
		var best *netlist.Module
		bestIn, bestOut := -1, 0
		for _, m := range order {
			if !free[m] {
				continue
			}
			toIn := netlist.NetsBetween(m, inPart)
			toOut := netsOutside(m, inPart)
			if best == nil || toIn > bestIn ||
				(toIn == bestIn && toOut < bestOut) {
				best, bestIn, bestOut = m, toIn, toOut
			}
		}
		if best == nil {
			break
		}
		// Refinement over the literal paper loop: once no free module
		// touches the partition any more, absorbing unrelated modules
		// would only destroy the functional grouping; start a new seed
		// instead. (The paper's networks are connected, so its formal
		// loop never hits this case.)
		if bestIn == 0 && len(part.Modules) > 0 {
			break
		}
		delete(free, best)
		inPart[best] = true
		part.Modules = append(part.Modules, best)
	}
	return part
}

// netsOutside counts distinct nets from m to modules not in set (m
// excluded).
func netsOutside(m *netlist.Module, set map[*netlist.Module]bool) int {
	seen := map[*netlist.Net]bool{}
	count := 0
	for _, t := range m.Terms {
		n := t.Net
		if n == nil || seen[n] {
			continue
		}
		seen[n] = true
		for _, u := range n.Terms {
			if u.Module != nil && u.Module != m && !set[u.Module] {
				count++
				break
			}
		}
	}
	return count
}

// externalConnections counts the distinct nets with a terminal inside
// the partition and a terminal outside it (another module or a system
// terminal) — the paper's "connections" bound in FORM_PARTITION.
func externalConnections(d *netlist.Design, inPart map[*netlist.Module]bool) int {
	count := 0
	for _, n := range d.Nets {
		inside, outside := false, false
		for _, t := range n.Terms {
			if t.Module != nil && inPart[t.Module] {
				inside = true
			} else {
				outside = true
			}
		}
		if inside && outside {
			count++
		}
	}
	return count
}

// NetsBetweenParts counts distinct nets with a terminal in a and a
// terminal in b, used by partition placement ordering.
func NetsBetweenParts(d *netlist.Design, a, b *Part) int {
	as, bs := a.Set(), b.Set()
	count := 0
	for _, n := range d.Nets {
		inA, inB := false, false
		for _, t := range n.Terms {
			if t.Module == nil {
				continue
			}
			if as[t.Module] {
				inA = true
			}
			if bs[t.Module] {
				inB = true
			}
		}
		if inA && inB {
			count++
		}
	}
	return count
}
