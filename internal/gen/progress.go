package gen

import (
	"netart/internal/place"
	"netart/internal/route"
)

// Progress event kinds, in the order a run emits them: one Placed
// event once placement geometry is final, then per routing attempt an
// Attempt event followed by one Net event per net in canonical commit
// order. The degradation ladder repeats the Attempt/Net sequence per
// rung it escalates through.
const (
	// ProgressPlaced reports the finished placement; Event.Placement
	// carries the geometry every routing attempt will run over.
	ProgressPlaced = "placed"
	// ProgressAttempt reports the start of one routing attempt;
	// Event.Attempt names its configuration (the same names Report.
	// Attempts lists).
	ProgressAttempt = "attempt"
	// ProgressNet reports one net committed by the attempt's main
	// routing pass, strictly in canonical commit order (see
	// route.Options.OnCommit for the exact contract, including how the
	// retry/rip-up passes may still improve failed nets afterwards).
	ProgressNet = "net"
)

// ProgressEvent is one pipeline progress notification delivered to
// Options.Progress.
type ProgressEvent struct {
	// Kind is one of the Progress* constants above.
	Kind string
	// Placement is set on ProgressPlaced events. It is the live result
	// the pipeline routes over: consumers must treat it as read-only.
	Placement *place.Result
	// Attempt names the routing attempt; set on ProgressAttempt and
	// ProgressNet events.
	Attempt string
	// Index is the net's position in the canonical commit order and
	// Total the number of nets in the pass (ProgressNet events).
	Index, Total int
	// Net is the committed outcome for one net (ProgressNet events).
	// Like Placement it aliases live pipeline state: read-only.
	Net *route.RoutedNet
}

// ProgressFunc receives pipeline progress events. Callbacks run
// synchronously on the pipeline goroutine — the commit loop of the
// router included — so they must be fast and must not block on slow
// consumers (buffer or drop instead).
type ProgressFunc func(ProgressEvent)

// emit delivers one event when a callback is configured.
func (f ProgressFunc) emit(ev ProgressEvent) {
	if f != nil {
		f(ev)
	}
}
