// Package gen is the automatic schematic diagram generator of figure
// 3.2: independent placement and routing composed into one call, plus
// the experiment harness that regenerates the evaluation of §6 (Table
// 6.1 and figures 6.1–6.7).
package gen

import (
	"context"
	"fmt"
	"strings"
	"time"

	"netart/internal/netlist"
	"netart/internal/obs"
	"netart/internal/place"
	"netart/internal/resilience"
	"netart/internal/route"
	"netart/internal/schematic"
	"netart/internal/workload"
)

// Placer selects the placement algorithm.
type Placer int

// The available placers: the paper's own algorithm plus the surveyed
// baselines (§4.2/§4.3).
const (
	PlacePaper Placer = iota
	PlaceEpitaxial
	PlaceMinCut
	PlaceLogicColumns
)

// String implements fmt.Stringer.
func (p Placer) String() string {
	switch p {
	case PlacePaper:
		return "paper"
	case PlaceEpitaxial:
		return "epitaxial"
	case PlaceMinCut:
		return "mincut"
	case PlaceLogicColumns:
		return "logic-columns"
	default:
		return fmt.Sprintf("Placer(%d)", int(p))
	}
}

// DegradeMode selects how Run responds to routing failure
// (nets left with unconnected terminals). The zero value preserves the
// historical behavior, so existing callers are unaffected.
type DegradeMode int

// The degradation policies, from laissez-faire to most protective.
const (
	// DegradeNone is the legacy behavior: unrouted nets are reported in
	// the diagram's metrics but neither escalate nor fail the call.
	DegradeNone DegradeMode = iota
	// DegradeStrict fails with *UnroutableError as soon as the
	// configured router leaves any net unrouted (no escalation).
	DegradeStrict
	// DegradeEscalate walks the ladder — dual-front line expansion,
	// then Lee with rip-up — and fails with *UnroutableError only when
	// every rung leaves failures.
	DegradeEscalate
	// DegradeBestEffort walks the ladder and, when failures remain,
	// returns the least-bad partial diagram with Diagram.Degraded
	// carrying the unrouted report instead of an error.
	DegradeBestEffort
)

// String implements fmt.Stringer.
func (m DegradeMode) String() string {
	switch m {
	case DegradeNone:
		return "none"
	case DegradeStrict:
		return "strict"
	case DegradeEscalate:
		return "escalate"
	case DegradeBestEffort:
		return "best-effort"
	default:
		return fmt.Sprintf("DegradeMode(%d)", int(m))
	}
}

// ParseDegradeMode maps the flag/JSON spelling onto a DegradeMode.
func ParseDegradeMode(s string) (DegradeMode, error) {
	switch s {
	case "", "none":
		return DegradeNone, nil
	case "strict":
		return DegradeStrict, nil
	case "escalate":
		return DegradeEscalate, nil
	case "best-effort", "besteffort":
		return DegradeBestEffort, nil
	default:
		return DegradeNone, fmt.Errorf("gen: unknown degrade mode %q (none, strict, escalate, best-effort)", s)
	}
}

// UnroutableError reports a generation whose routing stayed incomplete
// after every permitted attempt (DegradeStrict/DegradeEscalate).
type UnroutableError struct {
	// Unrouted lists the incomplete nets as "net: term1 term2 ...".
	Unrouted []string
	// Attempts names the ladder rungs that were tried, in order.
	Attempts []string
}

// Error implements error.
func (e *UnroutableError) Error() string {
	return fmt.Sprintf("gen: %d nets unrouted after %s",
		len(e.Unrouted), strings.Join(e.Attempts, ", "))
}

// Options configures a full generation run.
type Options struct {
	Placer Placer
	Place  place.Options
	Route  route.Options
	// Degrade selects the failure policy for incomplete routings; see
	// DegradeMode. The ladder never runs when routing succeeds, so the
	// fast path is untouched.
	Degrade DegradeMode
	// RouteWorkers sets the parallel routing worker count (route.
	// Options.Workers) for every routing attempt, including the
	// degradation-ladder rungs: 0 or 1 routes sequentially, higher
	// values run the deterministic speculation scheduler, whose output
	// is byte-identical to the sequential router's. When Route.Workers
	// is already non-zero it wins, so callers building route.Options by
	// hand keep full control.
	RouteWorkers int
	// PlaceWorkers sets the parallel placement worker count (place.
	// Options.Workers): box formation and per-partition module/box
	// placement run on up to this many goroutines with results
	// committed in canonical partition order, so the placement — and
	// therefore every routing attempt the degradation ladder makes on
	// top of it — is byte-identical to the sequential path. 0 or 1
	// places sequentially. When Place.Workers is already non-zero it
	// wins, mirroring RouteWorkers. Only the paper placer parallelizes;
	// the surveyed baseline placers ignore the knob.
	PlaceWorkers int
	// Inject, when non-nil, is propagated to the place.box and
	// route.wavefront fault sites for deterministic chaos testing.
	Inject *resilience.Injector

	// Observer, when non-nil, receives one span per pipeline stage
	// (place, route, plus a route.attempt child per ladder rung) and
	// feeds the per-stage latency histograms of its metric sink. A nil
	// observer is allocation-free on the hot path.
	Observer *obs.Observer
	// Progress, when non-nil, receives streaming progress events:
	// placement geometry once it is final, then per routing attempt the
	// attempt name followed by every net in canonical commit order (the
	// async job API streams these over SSE). Nil costs nothing.
	Progress ProgressFunc
	// StopAfterPlace runs only the placement phase (the PABLO half):
	// Report.Placement is filled, Report.Diagram stays nil.
	StopAfterPlace bool
	// Placement, when non-nil, skips placement and routes over the
	// given result (the EUREKA half); the design argument of Run may
	// then be nil.
	Placement *place.Result
}

// DefaultOptions returns the settings used by the examples: the paper's
// placer with moderate clustering, claimpoints on, and shortest-first
// net ordering (the benched default — it routes all 222 LIFE nets where
// the paper's design order strands one; design order stays available
// via route.Options.OrderShortestFirst=false / -route-order=design).
func DefaultOptions() Options {
	return Options{
		Place: place.Options{PartSize: 7, BoxSize: 5},
		Route: route.Options{Claimpoints: true, OrderShortestFirst: true},
	}
}

// Experiment is one row of the §6 evaluation.
type Experiment struct {
	ID      string // figure number, e.g. "6.4"
	Descr   string
	Build   func() *netlist.Design
	Options Options
	// Hand, when set, pins the named modules (figure 6.5's manual
	// tweak pins one module; figure 6.6 pins all of them).
	Hand func() map[string]workload.HandPos
	// HandOnly marks a fully manual placement (figure 6.6): placement
	// time is not reported, matching the dash in Table 6.1.
	HandOnly bool
}

// Experiments returns the full §6 suite in figure order.
func Experiments() []Experiment {
	return []Experiment{
		{
			ID:    "6.1",
			Descr: "6-module string, one partition, one box (-p 6 -b 6)",
			Build: workload.Fig61,
			Options: Options{
				Place: place.Options{PartSize: 6, BoxSize: 6},
				Route: route.Options{Claimpoints: true},
			},
		},
		{
			ID:    "6.2",
			Descr: "16 modules / 24 nets, pure clustering (-p 1 -b 1)",
			Build: workload.Datapath16,
			Options: Options{
				Place: place.Options{PartSize: 1, BoxSize: 1},
				Route: route.Options{Claimpoints: true},
			},
		},
		{
			ID:    "6.3",
			Descr: "functional partitions of five (-p 5 -b 1)",
			Build: workload.Datapath16,
			Options: Options{
				Place: place.Options{PartSize: 5, BoxSize: 1},
				Route: route.Options{Claimpoints: true},
			},
		},
		{
			ID:    "6.4",
			Descr: "partitions of strings (-p 7 -b 5)",
			Build: workload.Datapath16,
			Options: Options{
				Place: place.Options{PartSize: 7, BoxSize: 5},
				Route: route.Options{Claimpoints: true},
			},
		},
		{
			ID:    "6.5",
			Descr: "figure 6.2 with the controller manually moved top-left (-g)",
			Build: workload.Datapath16,
			Options: Options{
				Place: place.Options{PartSize: 1, BoxSize: 1},
				Route: route.Options{Claimpoints: true},
			},
			Hand: workload.Datapath16HandTweak,
		},
		{
			ID:       "6.6",
			Descr:    "LIFE network, 222 nets, manual placement, routing only",
			Build:    workload.Life27,
			Options:  Options{Route: route.Options{Claimpoints: true}},
			Hand:     workload.LifeHandPlacement,
			HandOnly: true,
		},
		{
			ID:    "6.7",
			Descr: "LIFE network, fully automatic generation",
			Build: workload.Life27,
			Options: Options{
				// Extra white space (-s 1 -i 2 -e 3): §5.7 notes
				// "there should always be enough routing space between
				// the modules"; without it the automatic placement
				// leaves the dense LIFE fabric short of tracks.
				Place: place.Options{PartSize: 5, BoxSize: 5,
					ModSpacing: 1, BoxSpacing: 2, PartSpacing: 3},
				Route: route.Options{Claimpoints: true},
			},
		},
	}
}

// Row is one measured Table 6.1 row.
type Row struct {
	Figure    string
	Modules   int
	Nets      int
	PlaceTime time.Duration
	RouteTime time.Duration
	HandOnly  bool // placement column prints "-"
	Unrouted  int
	Metrics   schematic.Metrics
}

// RunExperiment executes one experiment, timing the two phases
// separately like Table 6.1 does. (Before the gen.Run API redesign
// this function was called Run.)
func RunExperiment(e Experiment) (Row, *schematic.Diagram, error) {
	d := e.Build()
	stats := d.Stats()
	row := Row{Figure: e.ID, Modules: stats.Modules, Nets: stats.Nets, HandOnly: e.HandOnly}

	opts := e.Options
	if e.Hand != nil {
		fixed := map[*netlist.Module]place.Fixed{}
		for name, hp := range e.Hand() {
			m := d.Module(name)
			if m == nil {
				return row, nil, fmt.Errorf("gen: hand placement names unknown module %q", name)
			}
			fixed[m] = place.Fixed{Pos: hp.Pos, Orient: hp.Orient}
		}
		opts.Place.Fixed = fixed
	}

	rep, err := Run(context.Background(), d, opts)
	if err != nil {
		return row, nil, err
	}
	row.PlaceTime = rep.Timings.Place
	row.RouteTime = rep.Timings.Route
	row.Unrouted = rep.Unrouted()
	row.Metrics = rep.Diagram.Metrics()
	return row, rep.Diagram, nil
}

// Table61 runs the whole suite and returns the measured rows.
func Table61() ([]Row, error) {
	var rows []Row
	for _, e := range Experiments() {
		row, _, err := RunExperiment(e)
		if err != nil {
			return nil, fmt.Errorf("gen: experiment %s: %w", e.ID, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable61 renders rows in the layout of Table 6.1 ("Timing
// Figures"), with the unrouted count appended since §6's text reports
// it per figure.
func FormatTable61(rows []Row) string {
	out := "figure  modules  nets  placement  routing   unrouted\n"
	for _, r := range rows {
		placeCol := fmt.Sprintf("%9.3fs", r.PlaceTime.Seconds())
		if r.HandOnly {
			placeCol = "         -"
		}
		out += fmt.Sprintf("%-6s  %7d  %4d %s  %7.3fs  %8d\n",
			r.Figure, r.Modules, r.Nets, placeCol, r.RouteTime.Seconds(), r.Unrouted)
	}
	return out
}
