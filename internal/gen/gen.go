// Package gen is the automatic schematic diagram generator of figure
// 3.2: independent placement and routing composed into one call, plus
// the experiment harness that regenerates the evaluation of §6 (Table
// 6.1 and figures 6.1–6.7).
package gen

import (
	"context"
	"fmt"
	"time"

	"netart/internal/netlist"
	"netart/internal/place"
	"netart/internal/route"
	"netart/internal/schematic"
	"netart/internal/workload"
)

// Placer selects the placement algorithm.
type Placer int

// The available placers: the paper's own algorithm plus the surveyed
// baselines (§4.2/§4.3).
const (
	PlacePaper Placer = iota
	PlaceEpitaxial
	PlaceMinCut
	PlaceLogicColumns
)

// String implements fmt.Stringer.
func (p Placer) String() string {
	switch p {
	case PlacePaper:
		return "paper"
	case PlaceEpitaxial:
		return "epitaxial"
	case PlaceMinCut:
		return "mincut"
	case PlaceLogicColumns:
		return "logic-columns"
	default:
		return fmt.Sprintf("Placer(%d)", int(p))
	}
}

// Options configures a full generation run.
type Options struct {
	Placer Placer
	Place  place.Options
	Route  route.Options
}

// DefaultOptions returns the settings used by the examples: the paper's
// placer with moderate clustering, claimpoints on.
func DefaultOptions() Options {
	return Options{
		Place: place.Options{PartSize: 7, BoxSize: 5},
		Route: route.Options{Claimpoints: true},
	}
}

// PlaceDesign runs only the placement phase (the PABLO half).
func PlaceDesign(d *netlist.Design, opts Options) (*place.Result, error) {
	switch opts.Placer {
	case PlaceEpitaxial:
		return place.Epitaxial(d, 2+opts.Place.ModSpacing)
	case PlaceMinCut:
		return place.MinCut(d, 1+opts.Place.ModSpacing)
	case PlaceLogicColumns:
		return place.LogicColumns(d, 2+opts.Place.ModSpacing)
	default:
		return place.Place(d, opts.Place)
	}
}

// Generate runs placement followed by routing and returns the finished
// diagram. It is a thin wrapper over GenerateCtx with a background
// context, so the existing CLIs keep their uncancellable fast path.
func Generate(d *netlist.Design, opts Options) (*schematic.Diagram, error) {
	return GenerateCtx(context.Background(), d, opts)
}

// GenerateCtx is Generate with cancellation: the context's deadline or
// cancel signal is honored between the pipeline stages and inside the
// routing wavefront loops (the hottest paths; see route.RouteCtx). On
// cancellation it returns ctx.Err().
func GenerateCtx(ctx context.Context, d *netlist.Design, opts Options) (*schematic.Diagram, error) {
	dg, _, err := GenerateTimedCtx(ctx, d, opts)
	return dg, err
}

// StageTimings records the wall time each pipeline stage consumed
// during one GenerateTimedCtx run.
type StageTimings struct {
	Place time.Duration
	Route time.Duration
}

// GenerateTimedCtx runs the cancellable pipeline and additionally
// reports per-stage wall times, which the service layer feeds into its
// latency histograms.
func GenerateTimedCtx(ctx context.Context, d *netlist.Design, opts Options) (*schematic.Diagram, StageTimings, error) {
	var st StageTimings
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	t0 := time.Now()
	pr, err := PlaceDesign(d, opts)
	st.Place = time.Since(t0)
	if err != nil {
		return nil, st, err
	}
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	t1 := time.Now()
	rr, err := route.RouteCtx(ctx, pr, opts.Route)
	st.Route = time.Since(t1)
	if err != nil {
		return nil, st, err
	}
	return schematic.FromRouting(rr), st, nil
}

// GenerateOnPlacement routes a diagram over an existing placement (the
// EUREKA half).
func GenerateOnPlacement(pr *place.Result, opts route.Options) (*schematic.Diagram, error) {
	rr, err := route.Route(pr, opts)
	if err != nil {
		return nil, err
	}
	return schematic.FromRouting(rr), nil
}

// Experiment is one row of the §6 evaluation.
type Experiment struct {
	ID      string // figure number, e.g. "6.4"
	Descr   string
	Build   func() *netlist.Design
	Options Options
	// Hand, when set, pins the named modules (figure 6.5's manual
	// tweak pins one module; figure 6.6 pins all of them).
	Hand func() map[string]workload.HandPos
	// HandOnly marks a fully manual placement (figure 6.6): placement
	// time is not reported, matching the dash in Table 6.1.
	HandOnly bool
}

// Experiments returns the full §6 suite in figure order.
func Experiments() []Experiment {
	return []Experiment{
		{
			ID:    "6.1",
			Descr: "6-module string, one partition, one box (-p 6 -b 6)",
			Build: workload.Fig61,
			Options: Options{
				Place: place.Options{PartSize: 6, BoxSize: 6},
				Route: route.Options{Claimpoints: true},
			},
		},
		{
			ID:    "6.2",
			Descr: "16 modules / 24 nets, pure clustering (-p 1 -b 1)",
			Build: workload.Datapath16,
			Options: Options{
				Place: place.Options{PartSize: 1, BoxSize: 1},
				Route: route.Options{Claimpoints: true},
			},
		},
		{
			ID:    "6.3",
			Descr: "functional partitions of five (-p 5 -b 1)",
			Build: workload.Datapath16,
			Options: Options{
				Place: place.Options{PartSize: 5, BoxSize: 1},
				Route: route.Options{Claimpoints: true},
			},
		},
		{
			ID:    "6.4",
			Descr: "partitions of strings (-p 7 -b 5)",
			Build: workload.Datapath16,
			Options: Options{
				Place: place.Options{PartSize: 7, BoxSize: 5},
				Route: route.Options{Claimpoints: true},
			},
		},
		{
			ID:    "6.5",
			Descr: "figure 6.2 with the controller manually moved top-left (-g)",
			Build: workload.Datapath16,
			Options: Options{
				Place: place.Options{PartSize: 1, BoxSize: 1},
				Route: route.Options{Claimpoints: true},
			},
			Hand: workload.Datapath16HandTweak,
		},
		{
			ID:       "6.6",
			Descr:    "LIFE network, 222 nets, manual placement, routing only",
			Build:    workload.Life27,
			Options:  Options{Route: route.Options{Claimpoints: true}},
			Hand:     workload.LifeHandPlacement,
			HandOnly: true,
		},
		{
			ID:    "6.7",
			Descr: "LIFE network, fully automatic generation",
			Build: workload.Life27,
			Options: Options{
				// Extra white space (-s 1 -i 2 -e 3): §5.7 notes
				// "there should always be enough routing space between
				// the modules"; without it the automatic placement
				// leaves the dense LIFE fabric short of tracks.
				Place: place.Options{PartSize: 5, BoxSize: 5,
					ModSpacing: 1, BoxSpacing: 2, PartSpacing: 3},
				Route: route.Options{Claimpoints: true},
			},
		},
	}
}

// Row is one measured Table 6.1 row.
type Row struct {
	Figure    string
	Modules   int
	Nets      int
	PlaceTime time.Duration
	RouteTime time.Duration
	HandOnly  bool // placement column prints "-"
	Unrouted  int
	Metrics   schematic.Metrics
}

// Run executes one experiment, timing the two phases separately like
// Table 6.1 does.
func Run(e Experiment) (Row, *schematic.Diagram, error) {
	d := e.Build()
	stats := d.Stats()
	row := Row{Figure: e.ID, Modules: stats.Modules, Nets: stats.Nets, HandOnly: e.HandOnly}

	opts := e.Options
	if e.Hand != nil {
		fixed := map[*netlist.Module]place.Fixed{}
		for name, hp := range e.Hand() {
			m := d.Module(name)
			if m == nil {
				return row, nil, fmt.Errorf("gen: hand placement names unknown module %q", name)
			}
			fixed[m] = place.Fixed{Pos: hp.Pos, Orient: hp.Orient}
		}
		opts.Place.Fixed = fixed
	}

	t0 := time.Now()
	pr, err := PlaceDesign(d, opts)
	if err != nil {
		return row, nil, err
	}
	row.PlaceTime = time.Since(t0)

	t1 := time.Now()
	rr, err := route.Route(pr, opts.Route)
	if err != nil {
		return row, nil, err
	}
	row.RouteTime = time.Since(t1)

	dg := schematic.FromRouting(rr)
	row.Unrouted = rr.UnroutedCount()
	row.Metrics = dg.Metrics()
	return row, dg, nil
}

// Table61 runs the whole suite and returns the measured rows.
func Table61() ([]Row, error) {
	var rows []Row
	for _, e := range Experiments() {
		row, _, err := Run(e)
		if err != nil {
			return nil, fmt.Errorf("gen: experiment %s: %w", e.ID, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable61 renders rows in the layout of Table 6.1 ("Timing
// Figures"), with the unrouted count appended since §6's text reports
// it per figure.
func FormatTable61(rows []Row) string {
	out := "figure  modules  nets  placement  routing   unrouted\n"
	for _, r := range rows {
		placeCol := fmt.Sprintf("%9.3fs", r.PlaceTime.Seconds())
		if r.HandOnly {
			placeCol = "         -"
		}
		out += fmt.Sprintf("%-6s  %7d  %4d %s  %7.3fs  %8d\n",
			r.Figure, r.Modules, r.Nets, placeCol, r.RouteTime.Seconds(), r.Unrouted)
	}
	return out
}
