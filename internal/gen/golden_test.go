package gen

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netart/internal/netlist"
	"netart/internal/place"
	"netart/internal/route"
	"netart/internal/workload"
)

// This file is the golden-corpus half of the regression net: the five
// built-in workloads are rendered to ASCII and SVG and compared
// byte-for-byte against pinned files under testdata/golden/. Any
// change to partitioning, placement, routing or rendering that moves a
// single character shows up as a reviewable diff in the corpus rather
// than a silent drift.
//
// After an intentional pipeline change, regenerate the corpus with
//
//	go test ./internal/gen -run TestGoldenCorpus -update
//
// and commit the rewritten files alongside the change that caused
// them.

var updateGolden = flag.Bool("update", false, "rewrite the golden corpus under testdata/golden")

// goldenCase pins one workload at the option set its demo/bench
// counterparts use, so the corpus reflects artwork users actually see.
type goldenCase struct {
	name  string
	build func() *netlist.Design
	opts  Options
	slow  bool
}

func goldenCases() []goldenCase {
	return []goldenCase{
		// netart -demo fig61 (figure 6.1: one partition, one box).
		{"fig61", workload.Fig61,
			Options{Place: place.Options{PartSize: 6, BoxSize: 6},
				Route: route.Options{Claimpoints: true}}, false},
		// examples/quickstart, verbatim options.
		{"quickstart", workload.Quickstart,
			Options{Place: place.Options{PartSize: 4, BoxSize: 4},
				Route: route.Options{Claimpoints: true}}, false},
		// netart -demo datapath (figures 6.2–6.5) at the defaults.
		{"datapath", workload.Datapath16, DefaultOptions(), false},
		// netart -demo cpu: extra module/box tracks for the wide buses.
		{"cpu", workload.CPU,
			Options{Place: place.Options{PartSize: 7, BoxSize: 5,
				ModSpacing: 1, BoxSpacing: 1},
				Route: route.Options{Claimpoints: true}}, false},
		// netart -demo life (figures 6.6/6.7) with its spacing set.
		{"life", workload.Life27,
			Options{Place: place.Options{PartSize: 5, BoxSize: 5,
				ModSpacing: 1, BoxSpacing: 2, PartSpacing: 3},
				Route: route.Options{Claimpoints: true}}, true},
	}
}

// goldenRender runs the pipeline for a case and returns the two
// rendered artifacts.
func goldenRender(t *testing.T, tc goldenCase) (ascii, svg []byte) {
	t.Helper()
	rep, err := Run(context.Background(), tc.build(), tc.opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Diagram.Verify(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.Diagram.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	return []byte(rep.Diagram.ASCII()), []byte(sb.String())
}

// compareGolden checks got against testdata/golden/<name> byte for
// byte, rewriting the file under -update.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update to create it): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden corpus (%d got vs %d want bytes);\n"+
			"if the change is intentional, regenerate with:\n"+
			"  go test ./internal/gen -run TestGoldenCorpus -update\n%s",
			name, len(got), len(want), goldenDiff(want, got))
	}
}

// goldenDiff renders a short first-divergence report: full unified
// diffs of kilobyte SVGs drown the signal, the first differing line is
// what a reviewer needs.
func goldenDiff(want, got []byte) string {
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("first divergence at line %d:\n  golden: %q\n  got:    %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line count differs: golden %d, got %d", len(wl), len(gl))
}

// TestGoldenCorpus pins the rendered artwork of every built-in
// workload. The corpus is also the parallel-placement witness: each
// case re-renders with PlaceWorkers=4 and must still match the pinned
// bytes, so the goldens gate both "nothing drifted" and "parallel
// equals sequential".
func TestGoldenCorpus(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("life corpus skipped in -short mode")
			}
			ascii, svg := goldenRender(t, tc)
			compareGolden(t, tc.name+".ascii", ascii)
			compareGolden(t, tc.name+".svg", svg)
			if *updateGolden {
				return
			}
			par := tc
			par.opts.PlaceWorkers = 4
			par.opts.RouteWorkers = 4
			parASCII, parSVG := goldenRender(t, par)
			if !bytes.Equal(parASCII, ascii) || !bytes.Equal(parSVG, svg) {
				t.Errorf("parallel (place=4, route=4) rendering diverges from the golden corpus")
			}
		})
	}
}
