package gen

import (
	"context"
	"testing"

	"netart/internal/netlist"
	"netart/internal/place"
	"netart/internal/route"
	"netart/internal/workload"
)

// This file pins the expected unrouted-net count of every built-in
// workload under its canonical options, so routing regressions (or
// silent improvements that should be celebrated and re-pinned) fail
// loudly instead of drifting.
//
// Under the benched shortest-first default every workload routes
// completely — including LIFE, whose long observer net obs7 strands
// under the paper's design order (the bin nets that route before it
// fence off the channel it needs; shorter-first packing leaves it
// room). That historical failure is not papered over: the design-order
// legacy pin below keeps obs7 as the one documented casualty, matching
// the regime the paper itself reports (2 of 222 nets initially
// unroutable on LIFE, §6 figure 6.6).

func unroutedCount(t *testing.T, build func() *netlist.Design, opts Options) (int, []string) {
	t.Helper()
	rep, err := Run(context.Background(), build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, rn := range rep.Routing.Nets {
		if !rn.OK() {
			names = append(names, rn.Net.Name)
		}
	}
	return rep.Routing.UnroutedCount(), names
}

// lifeFig67Options are the figure 6.7 spacings the dense LIFE fabric
// needs (shared with cmd/benchpipe's cold run), under the benched
// shortest-first ordering default.
func lifeFig67Options() Options {
	return Options{
		Place: place.Options{PartSize: 5, BoxSize: 5,
			ModSpacing: 1, BoxSpacing: 2, PartSpacing: 3},
		Route: route.Options{Claimpoints: true, OrderShortestFirst: true},
	}
}

func TestPinnedUnroutedCounts(t *testing.T) {
	cases := []struct {
		name  string
		build func() *netlist.Design
		opts  Options
		want  int
		nets  []string // expected unrouted net names, when pinned
		slow  bool
	}{
		{"fig61", workload.Fig61, DefaultOptions(), 0, nil, false},
		{"datapath", workload.Datapath16, DefaultOptions(), 0, nil, false},
		{"cpu", workload.CPU, DefaultOptions(), 0, nil, false},
		{"life_fig67", workload.Life27, lifeFig67Options(), 0, nil, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("life pin skipped in -short mode")
			}
			got, names := unroutedCount(t, tc.build, tc.opts)
			if got != tc.want {
				t.Fatalf("%s: %d unrouted nets %v, pinned %d %v",
					tc.name, got, names, tc.want, tc.nets)
			}
			for i, n := range tc.nets {
				if i >= len(names) || names[i] != n {
					t.Fatalf("%s: unrouted nets %v, pinned %v", tc.name, names, tc.nets)
				}
			}
		})
	}
}

// TestLifeDesignOrderLegacyPin keeps the paper's design-order result
// on the books: LIFE under figure 6.7 options with -route-order=design
// leaves exactly one net unrouted — obs7, an ordering casualty, not a
// capacity limit. If this ever changes, the ordering default's benched
// rationale (and the pin above) need re-examination together.
func TestLifeDesignOrderLegacyPin(t *testing.T) {
	if testing.Short() {
		t.Skip("life routing skipped in -short mode")
	}
	opts := lifeFig67Options()
	opts.Route.OrderShortestFirst = false
	got, names := unroutedCount(t, workload.Life27, opts)
	if got != 1 || len(names) != 1 || names[0] != "obs7" {
		t.Fatalf("design-order life: %d unrouted %v, pinned 1 [obs7]", got, names)
	}
}
