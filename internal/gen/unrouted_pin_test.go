package gen

import (
	"context"
	"testing"

	"netart/internal/netlist"
	"netart/internal/place"
	"netart/internal/route"
	"netart/internal/workload"
)

// This file pins the expected unrouted-net count of every built-in
// workload under its canonical options, so routing regressions (or
// silent improvements that should be celebrated and re-pinned) fail
// loudly instead of drifting.
//
// The one non-zero entry is documented rather than papered over: LIFE
// under the figure 6.7 options leaves exactly one net unrouted — obs7,
// a long observer net crossing the dense bin fabric. It is an
// ordering casualty, not a capacity limit: the bin nets that route
// before it (design order) fence off the channel it needs, and
// routing shorter nets first (Options.Route.OrderShortestFirst) packs
// those nets tightly enough that obs7 completes — 0 unrouted, proven
// below. The paper itself reports 2 of 222 nets initially unroutable
// on LIFE (§6, figure 6.6), so 1 of 222 under canonical ordering is
// within the reference regime, and the default stays faithful to the
// paper's ordering rather than silently adopting the fix.

func unroutedCount(t *testing.T, build func() *netlist.Design, opts Options) (int, []string) {
	t.Helper()
	rep, err := Run(context.Background(), build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, rn := range rep.Routing.Nets {
		if !rn.OK() {
			names = append(names, rn.Net.Name)
		}
	}
	return rep.Routing.UnroutedCount(), names
}

// lifeFig67Options are the figure 6.7 spacings the dense LIFE fabric
// needs (shared with cmd/benchpipe's cold run).
func lifeFig67Options() Options {
	return Options{
		Place: place.Options{PartSize: 5, BoxSize: 5,
			ModSpacing: 1, BoxSpacing: 2, PartSpacing: 3},
		Route: route.Options{Claimpoints: true},
	}
}

func TestPinnedUnroutedCounts(t *testing.T) {
	cases := []struct {
		name  string
		build func() *netlist.Design
		opts  Options
		want  int
		nets  []string // expected unrouted net names, when pinned
		slow  bool
	}{
		{"fig61", workload.Fig61, DefaultOptions(), 0, nil, false},
		{"datapath", workload.Datapath16, DefaultOptions(), 0, nil, false},
		{"cpu", workload.CPU, DefaultOptions(), 0, nil, false},
		{"life_fig67", workload.Life27, lifeFig67Options(), 1, []string{"obs7"}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("life pin skipped in -short mode")
			}
			got, names := unroutedCount(t, tc.build, tc.opts)
			if got != tc.want {
				t.Fatalf("%s: %d unrouted nets %v, pinned %d %v",
					tc.name, got, names, tc.want, tc.nets)
			}
			for i, n := range tc.nets {
				if i >= len(names) || names[i] != n {
					t.Fatalf("%s: unrouted nets %v, pinned %v", tc.name, names, tc.nets)
				}
			}
		})
	}
}

// TestLifeShortestFirstRoutesCompletely documents the remedy for the
// pinned obs7 failure: shortest-first net ordering routes all 222 LIFE
// nets. If this ever regresses, the pin above and this test disagree
// about reality and both need re-examination.
func TestLifeShortestFirstRoutesCompletely(t *testing.T) {
	if testing.Short() {
		t.Skip("life routing skipped in -short mode")
	}
	opts := lifeFig67Options()
	opts.Route.OrderShortestFirst = true
	got, names := unroutedCount(t, workload.Life27, opts)
	if got != 0 {
		t.Fatalf("shortest-first life: %d unrouted %v, want 0", got, names)
	}
}
