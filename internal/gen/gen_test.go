package gen

import (
	"context"
	"strings"
	"testing"

	"netart/internal/place"
	"netart/internal/route"
	"netart/internal/workload"
)

func TestGenerateDefault(t *testing.T) {
	rep, err := Run(context.Background(), workload.Datapath16(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dg := rep.Diagram
	if err := dg.Verify(); err != nil {
		t.Fatal(err)
	}
	if dg.Metrics().Unrouted != 0 {
		t.Errorf("%d unrouted with default options", dg.Metrics().Unrouted)
	}
}

func TestGenerateWithBaselinePlacers(t *testing.T) {
	for _, p := range []Placer{PlaceEpitaxial, PlaceMinCut, PlaceLogicColumns} {
		opts := DefaultOptions()
		opts.Placer = p
		rep, err := Run(context.Background(), workload.Fig61(), opts)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if err := rep.Diagram.Verify(); err != nil {
			t.Errorf("%v: %v", p, err)
		}
	}
}

func TestPlacerString(t *testing.T) {
	for _, p := range []Placer{PlacePaper, PlaceEpitaxial, PlaceMinCut, PlaceLogicColumns, Placer(99)} {
		if p.String() == "" {
			t.Error("empty placer name")
		}
	}
}

func TestExperimentsSuiteComplete(t *testing.T) {
	es := Experiments()
	if len(es) != 7 {
		t.Fatalf("%d experiments, want 7 (figures 6.1-6.7)", len(es))
	}
	want := []string{"6.1", "6.2", "6.3", "6.4", "6.5", "6.6", "6.7"}
	for i, e := range es {
		if e.ID != want[i] {
			t.Errorf("experiment %d id = %s, want %s", i, e.ID, want[i])
		}
		if e.Build == nil || e.Descr == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestRunFig61(t *testing.T) {
	row, dg, err := RunExperiment(Experiments()[0])
	if err != nil {
		t.Fatal(err)
	}
	if row.Modules != 6 || row.Nets != 6 {
		t.Errorf("row counts: %d modules, %d nets", row.Modules, row.Nets)
	}
	if row.Unrouted != 0 {
		t.Errorf("unrouted = %d", row.Unrouted)
	}
	if err := dg.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig65PinsController(t *testing.T) {
	row, dg, err := RunExperiment(Experiments()[4])
	if err != nil {
		t.Fatal(err)
	}
	if row.Figure != "6.5" {
		t.Fatal("wrong experiment")
	}
	ctrl := dg.Design.Module("ctrl")
	want := workload.Datapath16HandTweak()["ctrl"]
	if got := dg.Placement.Mods[ctrl].Pos; got != want.Pos {
		t.Errorf("controller at %v, want pinned %v", got, want.Pos)
	}
}

func TestRunFig66HandPlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("LIFE routing is expensive")
	}
	row, dg, err := RunExperiment(Experiments()[5])
	if err != nil {
		t.Fatal(err)
	}
	if row.Modules != 27 || row.Nets != 222 {
		t.Errorf("row counts: %d modules, %d nets; Table 6.1 says 27/222", row.Modules, row.Nets)
	}
	if !row.HandOnly {
		t.Error("figure 6.6 must be marked hand-placed")
	}
	// Paper: 2 of 222 unroutable before manual repair; allow the same
	// regime.
	if row.Unrouted > 11 {
		t.Errorf("unrouted = %d, want the low single digits (paper: 2)", row.Unrouted)
	}
	if err := dg.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFormatTable61(t *testing.T) {
	rows := []Row{
		{Figure: "6.1", Modules: 6, Nets: 6},
		{Figure: "6.6", Modules: 27, Nets: 222, HandOnly: true, Unrouted: 2},
	}
	s := FormatTable61(rows)
	if !strings.Contains(s, "6.1") || !strings.Contains(s, "222") {
		t.Errorf("table: %s", s)
	}
	if !strings.Contains(s, "-") {
		t.Error("hand-placed row should print '-' for placement time")
	}
}

func TestRunOnPlacementFig61(t *testing.T) {
	pr, err := place.Place(workload.Fig61(), place.Options{PartSize: 6, BoxSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), nil,
		Options{Placement: pr, Route: route.Options{Claimpoints: true}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diagram.Metrics().Unrouted != 0 {
		t.Error("unrouted nets on fig61 placement")
	}
}

func TestRunHandPlacementUnknownModule(t *testing.T) {
	e := Experiments()[5]
	e.Hand = func() map[string]workload.HandPos {
		return map[string]workload.HandPos{"ghost": {}}
	}
	if _, _, err := RunExperiment(e); err == nil {
		t.Error("unknown hand-placed module accepted")
	}
}
