package gen

import (
	"context"
	"errors"
	"testing"

	"netart/internal/workload"
)

// TestGenerateCtxCancelled asserts cancellation aborts the pipeline.
func TestGenerateCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateCtx(ctx, workload.Datapath16(), DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestGenerateCtxMatchesGenerate asserts the ctx variant produces the
// same diagram metrics as the plain call, and reports stage timings.
func TestGenerateCtxMatchesGenerate(t *testing.T) {
	a, err := Generate(workload.Datapath16(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, st, err := GenerateTimedCtx(context.Background(), workload.Datapath16(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if am, bm := a.Metrics(), b.Metrics(); am != bm {
		t.Fatalf("metrics mismatch: Generate=%+v GenerateTimedCtx=%+v", am, bm)
	}
	if st.Place <= 0 || st.Route <= 0 {
		t.Fatalf("stage timings not recorded: %+v", st)
	}
}

// TestGenerateCtxConcurrentClones runs the full pipeline on independent
// clones of one shared design from multiple goroutines; under -race
// this guards the placement-mutates-design hazard end to end.
func TestGenerateCtxConcurrentClones(t *testing.T) {
	base := workload.Datapath16()
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := GenerateCtx(context.Background(), base.Clone(), DefaultOptions())
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Errorf("concurrent generation %d: %v", i, err)
		}
	}
}
