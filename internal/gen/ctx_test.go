package gen

import (
	"context"
	"errors"
	"testing"

	"netart/internal/workload"
)

// TestRunCancelled asserts cancellation aborts the pipeline.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, workload.Datapath16(), DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRunDeterministicWithTimings asserts two Run calls produce the
// same diagram metrics, and that stage timings are reported.
func TestRunDeterministicWithTimings(t *testing.T) {
	a, err := Run(context.Background(), workload.Datapath16(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), workload.Datapath16(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if am, bm := a.Diagram.Metrics(), b.Diagram.Metrics(); am != bm {
		t.Fatalf("metrics mismatch between identical runs: %+v vs %+v", am, bm)
	}
	if st := b.Timings; st.Place <= 0 || st.Route <= 0 {
		t.Fatalf("stage timings not recorded: %+v", st)
	}
}

// TestRunConcurrentClones runs the full pipeline on independent
// clones of one shared design from multiple goroutines; under -race
// this guards the placement-mutates-design hazard end to end.
func TestRunConcurrentClones(t *testing.T) {
	base := workload.Datapath16()
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := Run(context.Background(), base.Clone(), DefaultOptions())
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Errorf("concurrent generation %d: %v", i, err)
		}
	}
}
