package gen

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"netart/internal/netlist"
	"netart/internal/place"
	"netart/internal/route"
	"netart/internal/workload"
)

// This file is the rendered-output half of the determinism battery:
// the full pipeline — placement, parallel routing, schematic build,
// ASCII and SVG rendering — must produce byte-identical artwork for
// every worker count. The router-internal half (segments, plane cells,
// stats) lives in internal/route/parallel_test.go; this half proves no
// divergence hides in the layers above the router.

// renderPair runs the pipeline and returns the ASCII and SVG bytes.
func renderPair(t *testing.T, build func() *netlist.Design, opts Options) (string, string) {
	t.Helper()
	rep, err := Run(context.Background(), build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Every battery run also passes the geometry-level equivalence
	// check: the wires must realize the netlist, not just match the
	// sequential wires.
	if err := route.VerifyEquivalence(rep.Routing); err != nil {
		t.Fatal(err)
	}
	var svg strings.Builder
	if err := rep.Diagram.WriteSVG(&svg); err != nil {
		t.Fatal(err)
	}
	return rep.Diagram.ASCII(), svg.String()
}

var renderBatteryWorkers = []int{2, 4, 8}

func TestRenderedOutputDeterministicWorkloads(t *testing.T) {
	cases := []struct {
		name  string
		build func() *netlist.Design
		opts  Options
		slow  bool
	}{
		{"fig61", workload.Fig61,
			Options{Place: place.Options{PartSize: 6, BoxSize: 6},
				Route: route.Options{Claimpoints: true}}, false},
		{"datapath", workload.Datapath16, DefaultOptions(), false},
		{"life", workload.Life27,
			Options{Place: place.Options{PartSize: 5, BoxSize: 5,
				ModSpacing: 1, BoxSpacing: 2, PartSpacing: 3},
				Route: route.Options{Claimpoints: true}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("life battery skipped in -short mode")
			}
			seqASCII, seqSVG := renderPair(t, tc.build, tc.opts)
			for _, w := range renderBatteryWorkers {
				po := tc.opts
				po.RouteWorkers = w
				parASCII, parSVG := renderPair(t, tc.build, po)
				if parASCII != seqASCII {
					t.Errorf("workers=%d: ASCII rendering diverges from sequential", w)
				}
				if parSVG != seqSVG {
					t.Errorf("workers=%d: SVG rendering diverges from sequential", w)
				}
				// Parallel placement on top of parallel routing must
				// still match the fully sequential artwork.
				po.PlaceWorkers = w
				bothASCII, bothSVG := renderPair(t, tc.build, po)
				if bothASCII != seqASCII || bothSVG != seqSVG {
					t.Errorf("place+route workers=%d: rendering diverges from sequential", w)
				}
			}
		})
	}
}

// TestRenderedOutputDeterministicPlaceWorkers is the placement twin of
// the route sweep above: only PlaceWorkers varies, so a divergence
// localizes to the placement engine rather than the router.
func TestRenderedOutputDeterministicPlaceWorkers(t *testing.T) {
	cases := []struct {
		name  string
		build func() *netlist.Design
		opts  Options
	}{
		{"quickstart", workload.Quickstart,
			Options{Place: place.Options{PartSize: 4, BoxSize: 4},
				Route: route.Options{Claimpoints: true}}},
		{"datapath", workload.Datapath16, DefaultOptions()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seqASCII, seqSVG := renderPair(t, tc.build, tc.opts)
			for _, w := range renderBatteryWorkers {
				po := tc.opts
				po.PlaceWorkers = w
				parASCII, parSVG := renderPair(t, tc.build, po)
				if parASCII != seqASCII || parSVG != seqSVG {
					t.Errorf("place workers=%d: rendered output diverges from sequential", w)
				}
			}
		})
	}
}

// TestPlaceWorkersReachesEngine asserts the pipeline-level PlaceWorkers
// knob really reaches the placement engine (parallel stats appear) and
// that an explicit Place.Workers wins over it.
func TestPlaceWorkersReachesEngine(t *testing.T) {
	opts := DefaultOptions()
	opts.PlaceWorkers = 4
	rep, err := Run(context.Background(), workload.Datapath16(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ss := rep.Placement.Parallel
	if ss == nil {
		t.Fatal("PlaceWorkers=4 produced no parallel placement stats")
	}
	if ss.Workers < 2 {
		t.Fatalf("parallel placement ran with %d workers", ss.Workers)
	}
	if ss.Committed != ss.Partitions {
		t.Fatalf("committed %d of %d partitions", ss.Committed, ss.Partitions)
	}
	opts2 := DefaultOptions()
	opts2.PlaceWorkers = 4
	opts2.Place.Workers = 1
	rep2, err := Run(context.Background(), workload.Datapath16(), opts2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Placement.Parallel != nil {
		t.Fatal("Place.Workers=1 override did not force sequential placement")
	}
}

// TestRenderedOutputDeterministicSeeded sweeps seeded random designs
// through the full pipeline at every battery worker count.
func TestRenderedOutputDeterministicSeeded(t *testing.T) {
	seeds := int64(20)
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			build := func() *netlist.Design { return workload.Random(12, seed) }
			opts := Options{Place: place.Options{PartSize: 4, BoxSize: 2},
				Route: route.Options{Claimpoints: true}}
			seqASCII, seqSVG := renderPair(t, build, opts)
			for _, w := range renderBatteryWorkers {
				po := opts
				po.RouteWorkers = w
				parASCII, parSVG := renderPair(t, build, po)
				if parASCII != seqASCII || parSVG != seqSVG {
					t.Errorf("workers=%d: rendered output diverges from sequential", w)
				}
			}
		})
	}
}

// TestRouteWorkersReachesLadder asserts the RouteWorkers option really
// reaches the router (speculation stats appear) and that the
// degradation ladder inherits it on every rung.
func TestRouteWorkersReachesLadder(t *testing.T) {
	opts := DefaultOptions()
	opts.RouteWorkers = 4
	rep, err := Run(context.Background(), workload.Datapath16(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ss := rep.Routing.Speculation
	if ss == nil {
		t.Fatal("RouteWorkers=4 produced no speculation stats")
	}
	if ss.Workers < 2 {
		t.Fatalf("speculation ran with %d workers", ss.Workers)
	}
	// Explicit Route.Workers wins over the pipeline-level knob.
	opts2 := DefaultOptions()
	opts2.RouteWorkers = 4
	opts2.Route.Workers = 1
	rep2, err := Run(context.Background(), workload.Datapath16(), opts2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Routing.Speculation != nil {
		t.Fatal("Route.Workers=1 override did not force sequential routing")
	}
}
