package gen_test

import (
	"context"
	"testing"

	"netart/internal/gen"
	"netart/internal/place"
	"netart/internal/route"
	"netart/internal/sim"
	"netart/internal/workload"
)

// TestEndToEndRandomProperty is the system-level invariant sweep: for a
// spread of random networks and knob settings, the full pipeline
// (partition → box → place → route) must produce diagrams that pass
// both the structural verifier and the artwork connectivity extraction
// — shorts, opens, overlaps or module collisions anywhere in the stack
// fail here.
func TestEndToEndRandomProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	type knob struct {
		p, b, s int
		placer  gen.Placer
	}
	knobs := []knob{
		{1, 1, 0, gen.PlacePaper},
		{4, 3, 0, gen.PlacePaper},
		{7, 5, 1, gen.PlacePaper},
		{5, 3, 0, gen.PlaceEpitaxial},
		{5, 3, 0, gen.PlaceMinCut},
		{5, 3, 0, gen.PlaceLogicColumns},
	}
	for seed := int64(1); seed <= 6; seed++ {
		for _, k := range knobs {
			d := workload.Random(10, seed)
			rep, err := gen.Run(context.Background(), d, gen.Options{
				Placer: k.placer,
				Place:  place.Options{PartSize: k.p, BoxSize: k.b, ModSpacing: k.s},
				Route:  route.Options{Claimpoints: true},
			})
			if err != nil {
				t.Fatalf("seed %d placer %v p%d b%d: %v", seed, k.placer, k.p, k.b, err)
			}
			dg := rep.Diagram
			if err := dg.Verify(); err != nil {
				t.Errorf("seed %d placer %v p%d b%d: verify: %v", seed, k.placer, k.p, k.b, err)
				continue
			}
			// Extraction only checks fully routed nets.
			if err := sim.CheckExtraction(dg); err != nil {
				t.Errorf("seed %d placer %v p%d b%d: extract: %v", seed, k.placer, k.p, k.b, err)
			}
		}
	}
}

// TestExperimentDiagramsAllVerify runs every §6 experiment through the
// verifier and the artwork extraction.
func TestExperimentDiagramsAllVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite is expensive")
	}
	for _, e := range gen.Experiments() {
		_, dg, err := gen.RunExperiment(e)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if err := dg.Verify(); err != nil {
			t.Errorf("%s: verify: %v", e.ID, err)
		}
		if err := sim.CheckExtraction(dg); err != nil {
			t.Errorf("%s: extract: %v", e.ID, err)
		}
	}
}

// TestCPUWorkloadGenerates runs the additional accumulator-CPU workload
// through the full pipeline with several knob settings.
func TestCPUWorkloadGenerates(t *testing.T) {
	for _, po := range []place.Options{
		{PartSize: 5, BoxSize: 4},
		{PartSize: 8, BoxSize: 5, ModSpacing: 1},
	} {
		d := workload.CPU()
		rep, err := gen.Run(context.Background(), d, gen.Options{
			Place: po,
			Route: route.Options{Claimpoints: true, RipUp: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		dg := rep.Diagram
		if err := dg.Verify(); err != nil {
			t.Fatalf("p=%d: %v", po.PartSize, err)
		}
		if err := sim.CheckExtraction(dg); err != nil {
			t.Fatalf("p=%d: %v", po.PartSize, err)
		}
		if got := dg.Metrics().Unrouted; got > 2 {
			t.Errorf("p=%d: %d unrouted nets on the CPU workload", po.PartSize, got)
		}
	}
}
