package gen

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"netart/internal/netlist"
	"netart/internal/obs"
	"netart/internal/place"
	"netart/internal/resilience"
	"netart/internal/route"
	"netart/internal/schematic"
)

// StageTimings records the wall time each pipeline stage consumed
// during one Run. Parse and Render belong to callers that wrap the
// pipeline (the service measures them around Run); Place and Route are
// filled by Run itself. The JSON form uses millisecond floats under
// stable names (parse_ms, place_ms, route_ms, render_ms) shared by the
// /v1 and /v2 service APIs.
type StageTimings struct {
	Parse  time.Duration
	Place  time.Duration
	Route  time.Duration
	Render time.Duration
}

// stageTimingsJSON is the wire form of StageTimings.
type stageTimingsJSON struct {
	ParseMs  float64 `json:"parse_ms"`
	PlaceMs  float64 `json:"place_ms"`
	RouteMs  float64 `json:"route_ms"`
	RenderMs float64 `json:"render_ms"`
}

func durMs(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }

func msDur(ms float64) time.Duration { return time.Duration(ms * float64(time.Millisecond)) }

// MarshalJSON renders the timings as millisecond floats.
func (st StageTimings) MarshalJSON() ([]byte, error) {
	return json.Marshal(stageTimingsJSON{
		ParseMs:  durMs(st.Parse),
		PlaceMs:  durMs(st.Place),
		RouteMs:  durMs(st.Route),
		RenderMs: durMs(st.Render),
	})
}

// UnmarshalJSON parses the millisecond-float wire form.
func (st *StageTimings) UnmarshalJSON(b []byte) error {
	var w stageTimingsJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	st.Parse = msDur(w.ParseMs)
	st.Place = msDur(w.PlaceMs)
	st.Route = msDur(w.RouteMs)
	st.Render = msDur(w.RenderMs)
	return nil
}

// Report is the result of one Run: the finished diagram plus
// everything the run learned about itself — per-stage wall times, the
// routing attempts the degradation ladder made, the router's work
// counters, and (when an observer with tracing was attached) the span
// tree.
type Report struct {
	// Diagram is the finished schematic (nil when StopAfterPlace).
	Diagram *schematic.Diagram
	// Placement is the placement result (the PABLO half).
	Placement *place.Result
	// Routing is the raw routing result, including per-net outcomes
	// (nil when StopAfterPlace).
	Routing *route.Result
	// Timings holds per-stage wall times (Place/Route filled by Run).
	Timings StageTimings
	// Attempts names the routing configurations tried, in order; more
	// than one means the degradation ladder escalated.
	Attempts []string
	// Search aggregates the router's work counters over the run.
	Search route.SearchStats
	// Degraded mirrors Diagram.Degraded for callers that inspect the
	// report without the diagram.
	Degraded *schematic.Degradation
	// Trace is the span tree recorded by Options.Observer, nil when
	// tracing was off. The service takes its own later snapshot to
	// include the parse/render spans it wraps around Run.
	Trace *obs.TraceData
}

// Unrouted returns the number of nets left with unconnected terminals
// (0 when routing never ran).
func (r *Report) Unrouted() int {
	if r == nil || r.Routing == nil {
		return 0
	}
	return r.Routing.UnroutedCount()
}

// Run is the canonical pipeline entrypoint: placement followed by
// routing, cancellable through ctx, observable through Options.
// Observer, with routing failures handled by the degradation ladder
// selected by Options.Degrade.
//
// Variants that used to be separate functions are options now:
//
//   - Options.StopAfterPlace runs only the placement phase (the PABLO
//     half; Report.Diagram stays nil).
//   - Options.Placement routes over an existing placement (the EUREKA
//     half; d may be nil, the placement's design is used).
//
// Robustness: both stages run under resilience.Recover, so a panic in
// placement or routing surfaces as a structured *resilience.StageError
// instead of unwinding into the caller. The span tree records the
// outcome of every stage — ok, error, panic, or degraded — and ladder
// escalations appear as "route.attempt" children of the route span.
func Run(ctx context.Context, d *netlist.Design, opts Options) (*Report, error) {
	o := opts.Observer
	rep := &Report{}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.Inject != nil {
		if opts.Place.Inject == nil {
			opts.Place.Inject = opts.Inject
		}
		if opts.Route.Inject == nil {
			opts.Route.Inject = opts.Inject
		}
	}

	pr := opts.Placement
	if pr == nil {
		if d == nil {
			return nil, fmt.Errorf("gen: Run needs a design (or Options.Placement)")
		}
		if opts.PlaceWorkers > 1 && opts.Place.Workers == 0 {
			// The placement runs once, before the routing ladder; every
			// ladder rung therefore inherits the parallel placement the
			// same way it inherits RouteWorkers — through the single
			// placement result all attempts route over.
			opts.Place.Workers = opts.PlaceWorkers
		}
		sp := o.StartSpan("place")
		t0 := time.Now()
		err := resilience.Recover("place", func() error {
			var perr error
			pr, perr = placeDesign(d, opts)
			return perr
		})
		rep.Timings.Place = time.Since(t0)
		if err != nil {
			endSpanError(sp, err)
			return nil, err
		}
		sp.SetAttr("modules", int64(len(pr.Mods)))
		if pr.Parts != nil {
			boxes := 0
			for _, pp := range pr.Parts {
				boxes += len(pp.Boxes)
			}
			sp.SetAttr("partitions", int64(len(pr.Parts)))
			sp.SetAttr("boxes", int64(boxes))
		}
		observePlaceParallel(o, sp, pr.Parallel)
		sp.End()
	}
	rep.Placement = pr
	if d == nil {
		d = pr.Design
	}
	// Placement geometry is final from here on (routing never moves a
	// module), so streaming consumers may draw it now.
	opts.Progress.emit(ProgressEvent{Kind: ProgressPlaced, Placement: pr})
	if opts.StopAfterPlace {
		rep.Trace = o.Snapshot()
		return rep, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	sp := o.StartSpan("route")
	t1 := time.Now()
	rr, attempts, err := routeWithLadder(ctx, pr, opts, o)
	rep.Timings.Route = time.Since(t1)
	rep.Attempts = attempts
	if err != nil {
		endSpanError(sp, err)
		return nil, err
	}
	rep.Routing = rr
	rep.Search = rr.Stats
	sp.SetAttr("searches", int64(rr.Stats.Searches))
	sp.SetAttr("waves", int64(rr.Stats.Waves))
	sp.SetAttr("actives", int64(rr.Stats.Actives))
	sp.SetAttr("rip_ups", int64(rr.Stats.RipUps))
	sp.SetAttr("attempts", int64(len(attempts)))
	sp.SetAttr("unrouted", int64(rr.UnroutedCount()))

	dg := schematic.FromRouting(rr)
	if unrouted := unroutedReport(rr); len(unrouted) > 0 {
		switch opts.Degrade {
		case DegradeStrict, DegradeEscalate:
			uerr := &UnroutableError{Unrouted: unrouted, Attempts: attempts}
			sp.EndError(uerr)
			rep.Trace = o.Snapshot()
			return nil, uerr
		case DegradeBestEffort:
			dg.Degraded = &schematic.Degradation{
				Attempts: attempts,
				Unrouted: unrouted,
				Reason: fmt.Sprintf("%d of %d nets unrouted after %d routing attempt(s)",
					len(unrouted), len(d.Nets), len(attempts)),
			}
			sp.Degrade()
		}
	}
	sp.End()
	rep.Diagram = dg
	rep.Degraded = dg.Degraded
	rep.Trace = o.Snapshot()
	return rep, nil
}

// endSpanError closes a stage span with the right outcome: panic for
// recovered panics (StageError), error otherwise.
func endSpanError(sp *obs.Span, err error) {
	if se, ok := resilience.AsStageError(err); ok {
		sp.EndPanic(se.Cause)
		return
	}
	sp.EndError(err)
}

// placeDesign runs only the placement phase with the selected placer.
func placeDesign(d *netlist.Design, opts Options) (*place.Result, error) {
	switch opts.Placer {
	case PlaceEpitaxial:
		return place.Epitaxial(d, 2+opts.Place.ModSpacing)
	case PlaceMinCut:
		return place.MinCut(d, 1+opts.Place.ModSpacing)
	case PlaceLogicColumns:
		return place.LogicColumns(d, 2+opts.Place.ModSpacing)
	default:
		return place.Place(d, opts.Place)
	}
}

// ladderRung is one escalation step of the degradation ladder.
type ladderRung struct {
	name string
	opts route.Options
}

// ladderRungs derives the escalation sequence from the request's base
// routing options: first the dual-front line-expansion variant (§5.5.3
// halves the searched area, often finding corridors the single front
// missed), then the Lee maze runner with the rip-up pass (complete
// search plus displacement of blocking nets). Rungs identical to the
// base configuration are skipped — re-running the same router cannot
// improve a deterministic result.
func ladderRungs(base route.Options) []ladderRung {
	var rungs []ladderRung
	dual := base
	dual.Algorithm = route.AlgoLineExpansion
	dual.DualFront = true
	if !(base.Algorithm == route.AlgoLineExpansion && base.DualFront) {
		rungs = append(rungs, ladderRung{"route[dual-front]", dual})
	}
	lee := base
	lee.Algorithm = route.AlgoLee
	lee.DualFront = false
	lee.RipUp = true
	if !(base.Algorithm == route.AlgoLee && base.RipUp) {
		rungs = append(rungs, ladderRung{"route[lee+rip-up]", lee})
	}
	return rungs
}

// routeWithLadder routes the placement, escalating through the ladder
// when the policy asks for it. It returns the best (fewest-failures)
// result seen, the names of the attempts made, and an error only when
// the first attempt fails hard or the context dies. Later rungs fail
// soft: an injected fault or panic in an escalation attempt must never
// destroy the base result it was trying to improve. Every attempt
// appears as a "route.attempt" span under the route span.
func routeWithLadder(ctx context.Context, pr *place.Result, opts Options, o *obs.Observer) (*route.Result, []string, error) {
	if opts.RouteWorkers > 1 && opts.Route.Workers == 0 {
		// Every rung inherits the worker count: the ladder copies the
		// base options, so setting it here parallelizes all attempts.
		opts.Route.Workers = opts.RouteWorkers
	}
	run := func(name string, ro route.Options) (*route.Result, error) {
		asp := o.StartSpan("route.attempt")
		asp.SetAttrString("config", name)
		if opts.Progress != nil {
			opts.Progress.emit(ProgressEvent{Kind: ProgressAttempt, Attempt: name})
			// Bridge the router's ordered-commit hook onto the progress
			// stream: one event per net, in canonical commit order,
			// tagged with the attempt it belongs to.
			ro.OnCommit = func(idx, total int, rn *route.RoutedNet) {
				opts.Progress.emit(ProgressEvent{
					Kind: ProgressNet, Attempt: name, Index: idx, Total: total, Net: rn,
				})
			}
		}
		var rr *route.Result
		err := resilience.Recover("route", func() error {
			var rerr error
			rr, rerr = route.RouteCtx(ctx, pr, ro)
			return rerr
		})
		if err != nil {
			endSpanError(asp, err)
			return nil, err
		}
		asp.SetAttr("unrouted", int64(rr.UnroutedCount()))
		observeSpeculation(o, asp, rr.Speculation)
		asp.End()
		return rr, nil
	}

	base := fmt.Sprintf("route[%s]", describeRoute(opts.Route))
	attempts := []string{base}
	best, err := run(base, opts.Route)
	if err != nil {
		return nil, attempts, err
	}
	if best.UnroutedCount() == 0 || opts.Degrade < DegradeEscalate {
		return best, attempts, nil
	}

	for _, rung := range ladderRungs(opts.Route) {
		if ctx.Err() != nil {
			return nil, attempts, ctx.Err()
		}
		attempts = append(attempts, rung.name)
		rr, err := run(rung.name, rung.opts)
		if err != nil {
			if ctx.Err() != nil {
				return nil, attempts, ctx.Err()
			}
			continue // soft failure: keep the best result so far
		}
		if rr.UnroutedCount() < best.UnroutedCount() {
			best = rr
		}
		if best.UnroutedCount() == 0 {
			break
		}
	}
	return best, attempts, nil
}

// observeSpeculation records a parallel route attempt's speculation
// outcome on the attempt span and in the observer's metric sink
// (netart_route_speculation_total and the per-worker busy histogram).
// A nil SpecStats (sequential route) records nothing.
func observeSpeculation(o *obs.Observer, asp *obs.Span, ss *route.SpecStats) {
	if ss == nil {
		return
	}
	asp.SetAttr("workers", int64(ss.Workers))
	asp.SetAttr("spec_hits", int64(ss.Hits))
	asp.SetAttr("spec_misses", int64(ss.Misses))
	asp.SetAttr("spec_requeues", int64(ss.Requeues))
	m := o.Metrics()
	if m == nil {
		return
	}
	m.SpecHits.Add(uint64(ss.Hits))
	m.SpecMisses.Add(uint64(ss.Misses))
	m.SpecRequeues.Add(uint64(ss.Requeues))
	for _, busy := range ss.WorkerBusy {
		m.RouteWorkerBusy.Observe(time.Duration(busy * float64(time.Second)))
	}
}

// observePlaceParallel records a parallel placement's scheduler
// outcome on the place span and in the observer's metric sink
// (netart_place_speculation_total and the per-worker busy histogram).
// A nil SpecStats (sequential placement) records nothing.
func observePlaceParallel(o *obs.Observer, sp *obs.Span, ss *place.SpecStats) {
	if ss == nil {
		return
	}
	sp.SetAttr("workers", int64(ss.Workers))
	sp.SetAttr("par_partitions", int64(ss.Partitions))
	m := o.Metrics()
	if m == nil {
		return
	}
	m.PlaceSpecCommitted.Add(uint64(ss.Committed))
	for _, busy := range ss.WorkerBusy {
		m.PlaceWorkerBusy.Observe(time.Duration(busy * float64(time.Second)))
	}
}

// describeRoute names the base routing configuration for the attempts
// report.
func describeRoute(o route.Options) string {
	name := o.Algorithm.String()
	if o.DualFront && o.Algorithm == route.AlgoLineExpansion {
		name += "+dual-front"
	}
	if o.RipUp {
		name += "+rip-up"
	}
	return name
}

// unroutedReport lists every incomplete net as "net: term1 term2 ...".
func unroutedReport(rr *route.Result) []string {
	var out []string
	for _, rn := range rr.Nets {
		if rn.OK() {
			continue
		}
		var b strings.Builder
		b.WriteString(rn.Net.Name)
		b.WriteByte(':')
		for _, t := range rn.Failed {
			b.WriteByte(' ')
			b.WriteString(t.Label())
		}
		out = append(out, b.String())
	}
	return out
}
