package gen

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"netart/internal/obs"
	"netart/internal/resilience"
	"netart/internal/workload"
)

// TestRunReportAndTrace asserts the canonical entrypoint fills the
// report (diagram, timings, attempts, search counters) and records a
// span tree with the documented stage names and attributes.
func TestRunReportAndTrace(t *testing.T) {
	o := obs.NewObserver(nil, "generate")
	opts := DefaultOptions()
	opts.Observer = o
	rep, err := Run(context.Background(), workload.Datapath16(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diagram == nil || rep.Placement == nil || rep.Routing == nil {
		t.Fatalf("report incomplete: %+v", rep)
	}
	if rep.Timings.Place <= 0 || rep.Timings.Route <= 0 {
		t.Fatalf("stage timings not recorded: %+v", rep.Timings)
	}
	if len(rep.Attempts) != 1 || !strings.HasPrefix(rep.Attempts[0], "route[") {
		t.Fatalf("attempts = %v", rep.Attempts)
	}
	if rep.Search.Searches == 0 {
		t.Fatalf("search stats empty: %+v", rep.Search)
	}

	td := rep.Trace
	if td == nil || td.TraceID == "" {
		t.Fatal("report carries no trace")
	}
	place := td.Find("place")
	if place == nil || place.Outcome != obs.OutcomeOK {
		t.Fatalf("place span = %+v", place)
	}
	if place.Attrs["partitions"] == nil || place.Attrs["boxes"] == nil {
		t.Fatalf("place span missing partition/box attrs: %v", place.Attrs)
	}
	rt := td.Find("route")
	if rt == nil || rt.Attrs["searches"] == nil {
		t.Fatalf("route span = %+v", rt)
	}
	if len(rt.Children) != 1 || rt.Children[0].Stage != "route.attempt" {
		t.Fatalf("route children = %+v", rt.Children)
	}
}

// TestRunNilObserver asserts Run works identically with observability
// off (the allocation-free path).
func TestRunNilObserver(t *testing.T) {
	rep, err := Run(context.Background(), workload.Datapath16(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace != nil {
		t.Fatal("nil observer produced a trace")
	}
	if rep.Diagram == nil {
		t.Fatal("no diagram")
	}
}

// TestRunStopAfterPlace asserts the PABLO half: placement only.
func TestRunStopAfterPlace(t *testing.T) {
	opts := DefaultOptions()
	opts.StopAfterPlace = true
	rep, err := Run(context.Background(), workload.Datapath16(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Placement == nil {
		t.Fatal("no placement")
	}
	if rep.Diagram != nil || rep.Routing != nil {
		t.Fatal("StopAfterPlace still routed")
	}
}

// TestRunOnPlacement asserts the EUREKA half: routing over an existing
// placement, with a nil design argument.
func TestRunOnPlacement(t *testing.T) {
	opts := DefaultOptions()
	opts.StopAfterPlace = true
	placed, err := Run(context.Background(), workload.Datapath16(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ropts := DefaultOptions()
	ropts.Placement = placed.Placement
	rep, err := Run(context.Background(), nil, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diagram == nil {
		t.Fatal("no diagram from placement-reuse run")
	}
	if rep.Timings.Place != 0 {
		t.Fatalf("placement time recorded for a reused placement: %v", rep.Timings.Place)
	}
}

// TestRunDegradedOutcomeInTrace forces every wavefront to fail and
// asserts the best-effort ladder marks the route span degraded with
// one attempt child per rung.
func TestRunDegradedOutcomeInTrace(t *testing.T) {
	inj, err := resilience.ParseSpec("route.wavefront:error:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver(nil, "generate")
	opts := DefaultOptions()
	opts.Observer = o
	opts.Inject = inj
	opts.Degrade = DegradeBestEffort
	rep, err := Run(context.Background(), workload.Datapath16(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded == nil || rep.Diagram.Degraded == nil {
		t.Fatal("forced failure did not degrade")
	}
	if len(rep.Attempts) != 3 {
		t.Fatalf("attempts = %v, want base + 2 ladder rungs", rep.Attempts)
	}
	rt := rep.Trace.Find("route")
	if rt.Outcome != obs.OutcomeDegraded {
		t.Fatalf("route span outcome = %q, want degraded", rt.Outcome)
	}
	if len(rt.Children) != 3 {
		t.Fatalf("route attempt children = %d, want 3", len(rt.Children))
	}
}

// TestRunPanicOutcomeInTrace forces a placement panic and asserts the
// span records outcome "panic" while the error is a StageError.
func TestRunPanicOutcomeInTrace(t *testing.T) {
	inj, err := resilience.ParseSpec("place.box:panic:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver(nil, "generate")
	opts := DefaultOptions()
	opts.Observer = o
	opts.Inject = inj
	_, err = Run(context.Background(), workload.Datapath16(), opts)
	if _, ok := resilience.AsStageError(err); !ok {
		t.Fatalf("want StageError, got %v", err)
	}
	td := o.Snapshot()
	if got := td.Find("place").Outcome; got != obs.OutcomePanic {
		t.Fatalf("place span outcome = %q, want panic", got)
	}
}

// TestStageTimingsJSONRoundTrip pins the wire names shared by /v1 and
// /v2 (parse_ms, place_ms, route_ms, render_ms).
func TestStageTimingsJSONRoundTrip(t *testing.T) {
	st := StageTimings{Parse: 1500 * 1000, Place: 2 * 1000 * 1000} // 1.5ms, 2ms
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"parse_ms", "place_ms", "route_ms", "render_ms"} {
		if !strings.Contains(string(b), `"`+key+`"`) {
			t.Fatalf("marshalled timings missing %q: %s", key, b)
		}
	}
	var back StageTimings
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Parse != st.Parse || back.Place != st.Place {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, st)
	}
}
