// Package netart's top-level benchmarks regenerate every table and
// figure of the evaluation in §6 of Koster & Stok (EUT 89-E-219), plus
// the ablations behind the design choices the paper argues for in §4.5
// and §5.4 and the claimpoint claim of §5.7. Custom metrics are
// attached with b.ReportMetric; EXPERIMENTS.md records the paper-vs-
// measured comparison.
//
// Run with: go test -bench=. -benchmem
package netart

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"netart/internal/geom"

	"netart/internal/gen"
	"netart/internal/netlist"
	"netart/internal/place"
	"netart/internal/route"
	"netart/internal/schematic"
	"netart/internal/service"
	"netart/internal/workload"
)

// benchExperiment times one §6 experiment end to end and reports its
// diagram metrics.
func benchExperiment(b *testing.B, idx int) {
	b.Helper()
	e := gen.Experiments()[idx]
	var last gen.Row
	for i := 0; i < b.N; i++ {
		row, _, err := gen.RunExperiment(e)
		if err != nil {
			b.Fatal(err)
		}
		last = row
	}
	b.ReportMetric(float64(last.Unrouted), "unrouted")
	b.ReportMetric(float64(last.Metrics.WireLength), "wire")
	b.ReportMetric(float64(last.Metrics.Bends), "bends")
	b.ReportMetric(float64(last.Metrics.Crossings), "crossings")
	b.ReportMetric(last.Metrics.FlowRight, "flow")
	b.ReportMetric(last.PlaceTime.Seconds()*1000, "place-ms")
	b.ReportMetric(last.RouteTime.Seconds()*1000, "route-ms")
}

// Figures 6.1–6.7 (Table 6.1 rows), one benchmark each.

func BenchmarkFig61(b *testing.B) { benchExperiment(b, 0) }
func BenchmarkFig62(b *testing.B) { benchExperiment(b, 1) }
func BenchmarkFig63(b *testing.B) { benchExperiment(b, 2) }
func BenchmarkFig64(b *testing.B) { benchExperiment(b, 3) }
func BenchmarkFig65(b *testing.B) { benchExperiment(b, 4) }
func BenchmarkFig66(b *testing.B) { benchExperiment(b, 5) }
func BenchmarkFig67(b *testing.B) { benchExperiment(b, 6) }

// BenchmarkTable61 runs the whole suite per iteration — the "Timing
// Figures" table in one number — and reports the paper's headline
// ratio: routing the automatically placed LIFE network versus the
// hand-placed one (the paper measured 11:36 / 1:32 ≈ 7.6).
func BenchmarkTable61(b *testing.B) {
	var rows []gen.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = gen.Table61()
		if err != nil {
			b.Fatal(err)
		}
	}
	hand := rows[5].RouteTime.Seconds()
	auto := rows[6].RouteTime.Seconds()
	if hand > 0 {
		b.ReportMetric(auto/hand, "life-auto/hand-ratio")
	}
	total := 0
	for _, r := range rows {
		total += r.Unrouted
	}
	b.ReportMetric(float64(total), "unrouted-total")
}

// BenchmarkClaimpointsAblation measures the §5.7 claim: "in practice, a
// decrease of about 75% in the number of unroutable nets may be
// obtained". It routes the hand-placed LIFE network with and without
// the claimpoint extension (retry pass disabled for the bare run so the
// mechanism is isolated).
func BenchmarkClaimpointsAblation(b *testing.B) {
	run := func(b *testing.B, claims, retry bool) int {
		e := gen.Experiments()[5]
		e.Options.Route = route.Options{Claimpoints: claims, NoRetry: !retry}
		unrouted := 0
		for i := 0; i < b.N; i++ {
			row, _, err := gen.RunExperiment(e)
			if err != nil {
				b.Fatal(err)
			}
			unrouted = row.Unrouted
		}
		b.ReportMetric(float64(unrouted), "unrouted")
		return unrouted
	}
	var bare, full int
	b.Run("bare", func(b *testing.B) { bare = run(b, false, false) })
	b.Run("claimpoints", func(b *testing.B) { full = run(b, true, true) })
	if bare > 0 {
		reduction := 100 * float64(bare-full) / float64(bare)
		b.Logf("unroutable nets: %d -> %d (%.0f%% reduction; paper: ~75%%)", bare, full, reduction)
	}
}

// BenchmarkRouterComparison contrasts the paper's line-expansion router
// with the surveyed baselines of §5.2 on the figure 6.4 diagram: the
// Lee runner with the schematic objective, the classic length-first Lee
// runner, and the Hightower line router (fast but incomplete).
func BenchmarkRouterComparison(b *testing.B) {
	for _, algo := range []route.Algo{
		route.AlgoLineExpansion, route.AlgoLee, route.AlgoLeeLength, route.AlgoHightower,
	} {
		b.Run(algo.String(), func(b *testing.B) {
			d := workload.Datapath16()
			pr, err := place.Place(d, place.Options{PartSize: 7, BoxSize: 5})
			if err != nil {
				b.Fatal(err)
			}
			var m schematic.Metrics
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rr, err := route.Route(pr, route.Options{Algorithm: algo, Claimpoints: true})
				if err != nil {
					b.Fatal(err)
				}
				m = schematic.FromRouting(rr).Metrics()
				b.StopTimer()
				// A fresh plane per iteration: rebuild the placement
				// result is cheap, the plane is rebuilt inside Route.
				b.StartTimer()
			}
			b.ReportMetric(float64(m.Unrouted), "unrouted")
			b.ReportMetric(float64(m.Bends), "bends")
			b.ReportMetric(float64(m.WireLength), "wire")
			b.ReportMetric(float64(m.Crossings), "crossings")
		})
	}
}

// BenchmarkPlacementComparison contrasts the paper's placement with the
// §4.2/§4.3 baselines on the datapath network, reporting the properties
// §4.5 argues about: signal flow (min-cut "does not concern about the
// signal flow direction") and wire crossings after routing.
func BenchmarkPlacementComparison(b *testing.B) {
	for _, placer := range []gen.Placer{
		gen.PlacePaper, gen.PlaceEpitaxial, gen.PlaceMinCut, gen.PlaceLogicColumns,
	} {
		b.Run(placer.String(), func(b *testing.B) {
			opts := gen.Options{
				Placer: placer,
				Place:  place.Options{PartSize: 7, BoxSize: 5},
				Route:  route.Options{Claimpoints: true},
			}
			var m schematic.Metrics
			for i := 0; i < b.N; i++ {
				rep, err := gen.Run(context.Background(), workload.Datapath16(), opts)
				if err != nil {
					b.Fatal(err)
				}
				m = rep.Diagram.Metrics()
			}
			b.ReportMetric(m.FlowRight, "flow")
			b.ReportMetric(float64(m.Crossings), "crossings")
			b.ReportMetric(float64(m.WireLength), "wire")
			b.ReportMetric(float64(m.Unrouted), "unrouted")
			b.ReportMetric(float64(m.Area), "area")
		})
	}
}

// BenchmarkNetOrderAblation measures the §7 future-work item we
// implemented: routing shorter nets first versus the paper's design
// order, on the automatically placed LIFE network (the hardest case).
func BenchmarkNetOrderAblation(b *testing.B) {
	for _, cfg := range []struct {
		name     string
		shortest bool
	}{{"design-order", false}, {"shortest-first", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			e := gen.Experiments()[6] // figure 6.7
			e.Options.Route.OrderShortestFirst = cfg.shortest
			unrouted := 0
			for i := 0; i < b.N; i++ {
				row, _, err := gen.RunExperiment(e)
				if err != nil {
					b.Fatal(err)
				}
				unrouted = row.Unrouted
			}
			b.ReportMetric(float64(unrouted), "unrouted")
		})
	}
}

// BenchmarkObjectiveSwap measures the EUREKA -s option: length-first
// tie-breaking versus the default crossing-first order (§5.6.1,
// Appendix F).
func BenchmarkObjectiveSwap(b *testing.B) {
	for _, cfg := range []struct {
		name string
		swap bool
	}{{"bends-cross-length", false}, {"bends-length-cross", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			d := workload.Datapath16()
			pr, err := place.Place(d, place.Options{PartSize: 7, BoxSize: 5})
			if err != nil {
				b.Fatal(err)
			}
			var m schematic.Metrics
			for i := 0; i < b.N; i++ {
				rr, err := route.Route(pr, route.Options{Claimpoints: true, SwapObjective: cfg.swap})
				if err != nil {
					b.Fatal(err)
				}
				m = schematic.FromRouting(rr).Metrics()
			}
			b.ReportMetric(float64(m.Crossings), "crossings")
			b.ReportMetric(float64(m.WireLength), "wire")
		})
	}
}

// BenchmarkChannelRouter exercises the §5.2.4 baseline on synthetic
// channel instances, reporting how close the left-edge packing stays to
// the density lower bound.
func BenchmarkChannelRouter(b *testing.B) {
	mkPins := func(n, seed int) []route.ChannelPin {
		var pins []route.ChannelPin
		x := seed
		for net := 1; net <= n; net++ {
			x = (x*1103515245 + 12345) & 0x7fffffff
			lo := x % 60
			x = (x*1103515245 + 12345) & 0x7fffffff
			w := 1 + x%20
			pins = append(pins,
				route.ChannelPin{X: lo, Net: net, Top: true},
				route.ChannelPin{X: lo + w, Net: net})
		}
		return pins
	}
	tracks, density := 0, 0
	for i := 0; i < b.N; i++ {
		for seed := 0; seed < 10; seed++ {
			pins := mkPins(40, seed)
			ivs, err := route.BuildIntervals(pins)
			if err != nil {
				b.Fatal(err)
			}
			tracks = len(route.LeftEdge(ivs))
			density = route.ChannelDensity(ivs)
		}
	}
	b.ReportMetric(float64(tracks), "tracks")
	b.ReportMetric(float64(density), "density")
}

// BenchmarkChainScaling measures generation cost growth with network
// size on string networks (the §4.6.8/§5.8 complexity discussion).
func BenchmarkChainScaling(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := workload.Chain(n)
				rep, err := gen.Run(context.Background(), d, gen.Options{
					Place: place.Options{PartSize: n, BoxSize: n},
					Route: route.Options{Claimpoints: true},
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Diagram.Metrics().Unrouted != 0 {
					b.Fatal("chain failed to route")
				}
			}
		})
	}
}

// BenchmarkLineExpansionSearch isolates the router core: one
// point-to-point search across a mostly empty plane per iteration, the
// unit the §5.8 complexity argument reasons about ("if the number of
// bends is small then a path will be found in no time").
func BenchmarkLineExpansionSearch(b *testing.B) {
	d := netlist.NewDesign("bench")
	mk := func(name string, ts netlist.TermSpec) *netlist.Module {
		m, err := d.AddModule(name, "", 2, 2, []netlist.TermSpec{ts})
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	ma := mk("A", netlist.TermSpec{Name: "Y", Type: netlist.Out, Pos: geom.Pt(2, 1)})
	mb := mk("B", netlist.TermSpec{Name: "A", Type: netlist.In, Pos: geom.Pt(0, 1)})
	if err := d.Connect("w", "A", "Y"); err != nil {
		b.Fatal(err)
	}
	if err := d.Connect("w", "B", "A"); err != nil {
		b.Fatal(err)
	}
	pr := &place.Result{
		Design: d,
		Mods: map[*netlist.Module]*place.PlacedModule{
			ma: {Mod: ma, Pos: geom.Pt(0, 0)},
			mb: {Mod: mb, Pos: geom.Pt(60, 40)},
		},
		SysPos: map[*netlist.Terminal]geom.Point{},
	}
	pr.ModuleBounds = geom.R(0, 0, 62, 42)
	pr.Bounds = pr.ModuleBounds
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr, err := route.Route(pr, route.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if rr.UnroutedCount() != 0 {
			b.Fatal("search failed")
		}
	}
}

// BenchmarkCompletionLadder stacks the completion mechanisms on the
// hardest canonical case (figure 6.5's pinned-controller placement):
// bare sequential routing, the §5.7 retry pass, claimpoints, the §7
// shortest-first ordering, and the rip-up extension.
func BenchmarkCompletionLadder(b *testing.B) {
	ladder := []struct {
		name string
		opts route.Options
	}{
		{"bare", route.Options{NoRetry: true}},
		{"retry", route.Options{}},
		{"claims+retry", route.Options{Claimpoints: true}},
		{"claims+shortest", route.Options{Claimpoints: true, OrderShortestFirst: true}},
		{"claims+ripup", route.Options{Claimpoints: true, RipUp: true}},
	}
	for _, step := range ladder {
		b.Run(step.name, func(b *testing.B) {
			e := gen.Experiments()[4] // figure 6.5
			e.Options.Route = step.opts
			unrouted := 0
			for i := 0; i < b.N; i++ {
				row, _, err := gen.RunExperiment(e)
				if err != nil {
					b.Fatal(err)
				}
				unrouted = row.Unrouted
			}
			b.ReportMetric(float64(unrouted), "unrouted")
		})
	}
}

// BenchmarkServiceGenerate measures the netartd service core, cold
// versus warm cache. "cold" disables the result cache so every
// iteration runs the full pipeline through the worker pool; "warm"
// primes the content-addressed cache once and then serves the LIFE
// workload from it — warm-direct through the service core, warm-http
// through a real POST /v1/generate round trip. The warm paths are the
// <1ms acceptance gate of the service subsystem.
func BenchmarkServiceGenerate(b *testing.B) {
	lifeReq := service.Request{
		Workload: "life",
		Format:   service.FormatSummary,
		Options: service.GenOptions{
			PartSize: 5, BoxSize: 5,
			ModSpacing: 1, BoxSpacing: 2, PartSpacing: 3,
		},
	}

	b.Run("cold", func(b *testing.B) {
		s := service.New(service.Config{Workers: 1, CacheEntries: 0})
		defer s.Close()
		req := service.Request{Workload: "fig61", Format: service.FormatASCII,
			Options: service.GenOptions{PartSize: 6, BoxSize: 6}}
		for i := 0; i < b.N; i++ {
			if _, err := s.Generate(context.Background(), &req); err != nil {
				b.Fatal(err)
			}
		}
		st := s.Stats()
		b.ReportMetric(float64(st.Cache.Misses)/float64(b.N), "miss/op")
	})

	b.Run("warm-direct", func(b *testing.B) {
		s := service.New(service.Config{Workers: 2, CacheEntries: 64})
		defer s.Close()
		if _, err := s.Generate(context.Background(), &lifeReq); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := s.Generate(context.Background(), &lifeReq)
			if err != nil {
				b.Fatal(err)
			}
			if !resp.Cached {
				b.Fatal("warm request missed the cache")
			}
		}
		st := s.Stats()
		b.ReportMetric(float64(st.Cache.Hits)/float64(b.N), "hit/op")
	})

	b.Run("warm-http", func(b *testing.B) {
		s := service.New(service.Config{Workers: 2, CacheEntries: 64})
		defer s.Close()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		body, err := json.Marshal(lifeReq)
		if err != nil {
			b.Fatal(err)
		}
		post := func() *service.Response {
			r, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			defer r.Body.Close()
			if r.StatusCode != http.StatusOK {
				b.Fatalf("status %d", r.StatusCode)
			}
			var resp service.Response
			if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
				b.Fatal(err)
			}
			return &resp
		}
		post() // prime
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !post().Cached {
				b.Fatal("warm request missed the cache")
			}
		}
	})
}

// BenchmarkDualFront measures the §5.5.3 two-front initiation against
// the default single front on the datapath diagram: equivalent results,
// less area searched.
func BenchmarkDualFront(b *testing.B) {
	for _, cfg := range []struct {
		name string
		dual bool
	}{{"single-front", false}, {"dual-front", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			d := workload.Datapath16()
			pr, err := place.Place(d, place.Options{PartSize: 7, BoxSize: 5})
			if err != nil {
				b.Fatal(err)
			}
			var cells, unrouted int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rr, err := route.Route(pr, route.Options{Claimpoints: true, DualFront: cfg.dual})
				if err != nil {
					b.Fatal(err)
				}
				cells = rr.Stats.Cells
				unrouted = rr.UnroutedCount()
			}
			b.ReportMetric(float64(cells), "cells-swept")
			b.ReportMetric(float64(unrouted), "unrouted")
		})
	}
}
